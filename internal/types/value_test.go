package types

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INTEGER", KindFloat: "DECIMAL",
		KindString: "VARCHAR", KindDate: "DATE", KindBool: "BOOLEAN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind should include code, got %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() should be null")
	}
	if Int(7).IsNull() || Int(7).I != 7 {
		t.Error("Int(7) malformed")
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Error("Float AsFloat failed")
	}
	if i, ok := Int(9).AsInt(); !ok || i != 9 {
		t.Error("Int AsInt failed")
	}
	if i, ok := Float(9.9).AsInt(); !ok || i != 9 {
		t.Error("Float AsInt should truncate toward zero")
	}
	if _, ok := Str("x").AsFloat(); ok {
		t.Error("string should not convert to float")
	}
	if _, ok := Null().AsInt(); ok {
		t.Error("null should not convert to int")
	}
	if !Bool(true).Truth() || Bool(false).Truth() || Null().Truth() {
		t.Error("Truth() must be true only for boolean true")
	}
}

func TestDateRoundTrip(t *testing.T) {
	v, err := DateFromString("1995-01-01")
	if err != nil {
		t.Fatal(err)
	}
	if v.K != KindDate {
		t.Fatalf("kind = %v", v.K)
	}
	if got := v.String(); got != "1995-01-01" {
		t.Fatalf("round trip = %q", got)
	}
	if _, err := DateFromString("not-a-date"); err == nil {
		t.Fatal("expected error for malformed date")
	}
	epoch := MustDate("1970-01-01")
	if epoch.I != 0 {
		t.Fatalf("epoch day = %d, want 0", epoch.I)
	}
	if MustDate("1970-01-02").I != 1 {
		t.Fatal("1970-01-02 should be day 1")
	}
}

func TestMustDatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustDate should panic on bad input")
		}
	}()
	MustDate("bogus")
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Float(2.0), Int(2), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
		{Date(10), Date(20), -1},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIncomparablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("comparing string with int should panic")
		}
	}()
	Compare(Str("x"), Int(1))
}

func TestEqual(t *testing.T) {
	if !Equal(Int(5), Float(5)) {
		t.Error("int 5 and float 5.0 should be equal")
	}
	if Equal(Str("a"), Str("b")) {
		t.Error("distinct strings equal")
	}
}

// TestAppendKeyInjective: equal values produce equal encodings, different
// values different encodings — the property joins and AIP sets rely on.
func TestAppendKeyInjective(t *testing.T) {
	vals := []Value{
		Null(), Int(0), Int(1), Int(-1), Int(math.MaxInt64),
		Float(0.5), Float(-0.5), Float(3), Int(3),
		Str(""), Str("a"), Str("ab"), Str("a\x00b"),
		Date(0), Date(9000), Bool(true), Bool(false),
	}
	for i, a := range vals {
		for j, b := range vals {
			ka := string(a.AppendKey(nil))
			kb := string(b.AppendKey(nil))
			eq := func() bool {
				defer func() { recover() }()
				return Equal(a, b)
			}()
			if eq && ka != kb {
				t.Errorf("equal values %v(%d) %v(%d) encode differently", a, i, b, j)
			}
			if !eq && ka == kb && comparableKinds(a, b) {
				t.Errorf("distinct values %v %v encode identically", a, b)
			}
		}
	}
}

func comparableKinds(a, b Value) bool {
	num := func(k Kind) bool {
		return k == KindInt || k == KindFloat || k == KindDate || k == KindBool
	}
	if a.K == KindNull || b.K == KindNull {
		return true
	}
	return num(a.K) && num(b.K) || a.K == KindString && b.K == KindString
}

// Cross-kind numeric equality must hash identically (equijoins between an
// INTEGER column and a DECIMAL column).
func TestAppendKeyCrossKindNumeric(t *testing.T) {
	a := Int(42).AppendKey(nil)
	b := Float(42).AppendKey(nil)
	if string(a) != string(b) {
		t.Fatal("Int(42) and Float(42) must share a key encoding")
	}
	c := Float(42.5).AppendKey(nil)
	if string(a) == string(c) {
		t.Fatal("42 and 42.5 must not collide")
	}
}

func TestAppendKeyStringBoundary(t *testing.T) {
	// The 0x00 terminator plus tag must keep ("a", "b") distinguishable
	// from ("ab", "") in multi-column keys.
	t1 := Tuple{Str("a"), Str("b")}
	t2 := Tuple{Str("ab"), Str("")}
	if t1.Key([]int{0, 1}) == t2.Key([]int{0, 1}) {
		t.Fatal("multi-column string keys collide")
	}
}

func TestFloatBitsCanonicalization(t *testing.T) {
	if floatBits(0.0) != floatBits(math.Copysign(0, -1)) {
		t.Error("0.0 and -0.0 must share bits")
	}
	if floatBits(math.NaN()) != floatBits(math.Float64frombits(0x7ff8000000000001)) {
		t.Error("all NaNs must share bits")
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKeyEncodingMatchesEquality(t *testing.T) {
	f := func(a, b int64) bool {
		ka := string(Int(a).AppendKey(nil))
		kb := string(Int(b).AppendKey(nil))
		return (a == b) == (ka == kb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloatKeyEncoding(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := string(Float(a).AppendKey(nil))
		kb := string(Float(b).AppendKey(nil))
		return (Compare(Float(a), Float(b)) == 0) == (ka == kb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{Str("hi"), "hi"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{MustDate("2007-01-01"), "2007-01-01"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestMemSize(t *testing.T) {
	if Str("hello").MemSize() <= Str("").MemSize() {
		t.Error("longer strings must report more memory")
	}
	if Int(1).MemSize() <= 0 {
		t.Error("values must have positive size")
	}
}

package types

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Tuple is one row: a flat slice of values positionally aligned with a
// Schema.
type Tuple []Value

// Clone returns a deep-enough copy of the tuple (values are value types, so
// a slice copy suffices; strings share backing storage, which is safe
// because values are immutable once produced).
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// MemSize returns the approximate in-memory footprint of the tuple in
// bytes, including the slice header.
func (t Tuple) MemSize() int {
	n := 24 // slice header
	for _, v := range t {
		n += v.MemSize()
	}
	return n
}

// Key encodes the listed column positions into a canonical hash key. It is
// the convenience form of AppendKeyCols for cold paths; the executor's hot
// paths use AppendKeyCols (via Hasher) to avoid the string allocation.
func (t Tuple) Key(cols []int) string {
	return string(t.AppendKeyCols(nil, cols))
}

// AppendKeyCols appends the canonical encoding of the listed columns to dst
// and returns it; an allocation-light variant of Key for hot paths. The
// integer-backed kinds — the dominant key shape — encode directly here
// rather than through the AppendKey call (which is too large to inline and
// showed up as pure call overhead in batch-probe profiles); the encoding is
// identical.
func (t Tuple) AppendKeyCols(dst []byte, cols []int) []byte {
	for _, c := range cols {
		if v := t[c]; v.K == KindInt || v.K == KindDate || v.K == KindBool {
			dst = AppendIntKey(dst, v.I)
			continue
		}
		dst = t[c].AppendKey(dst)
	}
	return dst
}

// AppendIntKey appends the canonical key encoding of an integer-backed
// value (the 0x01 tag followed by the big-endian payload). It is the
// inlinable fast path the hot key kernels share; Value.AppendKey produces
// the identical bytes. The in-capacity case is two plain stores — batch
// key kernels run it once per tuple, where a 9-byte append's memmove call
// dominated the encode in profiles.
func AppendIntKey(dst []byte, v int64) []byte {
	n := len(dst)
	if cap(dst)-n >= 9 {
		dst = dst[:n+9]
		dst[n] = 0x01
		binary.BigEndian.PutUint64(dst[n+1:], uint64(v))
		return dst
	}
	return appendIntKeyGrow(dst, v)
}

func appendIntKeyGrow(dst []byte, v int64) []byte {
	var tmp [9]byte
	tmp[0] = 0x01
	binary.BigEndian.PutUint64(tmp[1:], uint64(v))
	return append(dst, tmp[:]...)
}

// Concat returns a new tuple that is the concatenation of a and b, used by
// joins to build output rows.
func Concat(a, b Tuple) Tuple {
	out := make(Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// String renders the tuple as a parenthesized value list.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Column describes one attribute of a schema: the table alias that
// produced it (empty for derived columns), its name, and its type.
type Column struct {
	Table string // qualifier (table alias), may be empty
	Name  string // column name or alias
	Kind  Kind
}

// QualifiedName returns "table.name" or just "name" when unqualified.
func (c Column) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns describing the tuples an operator
// produces.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// Concat returns the schema of a join output: a's columns followed by b's.
func (s *Schema) Concat(other *Schema) *Schema {
	cols := make([]Column, 0, len(s.Cols)+len(other.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, other.Cols...)
	return &Schema{Cols: cols}
}

// Resolve locates a possibly-qualified column reference. It returns the
// column position, or an error when the reference is ambiguous or missing.
func (s *Schema) Resolve(table, name string) (int, error) {
	found := -1
	for i, c := range s.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("types: ambiguous column reference %q", Column{Table: table, Name: name}.QualifiedName())
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("types: unknown column %q in schema %s", Column{Table: table, Name: name}.QualifiedName(), s)
	}
	return found, nil
}

// IndexOf returns the position of the exact (table, name) pair, or -1.
func (s *Schema) IndexOf(table, name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) && strings.EqualFold(c.Table, table) {
			return i
		}
	}
	return -1
}

// String renders the schema for error messages.
func (s *Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.QualifiedName()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Project returns a schema consisting of the listed columns.
func (s *Schema) Project(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Cols[j]
	}
	return &Schema{Cols: cols}
}

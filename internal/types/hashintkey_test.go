package types

import (
	"math"
	"testing"
)

// TestHashIntKeyMatchesHash64 pins the register-path hash to the canonical
// byte-path hash for the integer-kind key encoding, across sign, boundary,
// and byte-pattern cases.
func TestHashIntKeyMatchesHash64(t *testing.T) {
	vals := []int64{0, 1, -1, 42, -42, math.MaxInt64, math.MinInt64,
		0x0102030405060708, -0x0102030405060708, 1 << 32, (1 << 32) - 1}
	for _, v := range vals {
		enc := Int(v).AppendKey(nil)
		if got, want := HashIntKey(v), Hash64(enc, 0); got != want {
			t.Fatalf("HashIntKey(%d) = %#x, Hash64(enc) = %#x", v, got, want)
		}
	}
}

// TestAppendIntKeyMatchesAppendKey pins the shared fast append to the
// canonical Value.AppendKey encoding for every integer-backed kind.
func TestAppendIntKeyMatchesAppendKey(t *testing.T) {
	for _, v := range []Value{Int(7), Int(-7), Date(123456), Bool(true), Bool(false)} {
		want := v.AppendKey(nil)
		got := AppendIntKey(nil, v.I)
		if string(got) != string(want) {
			t.Fatalf("AppendIntKey(%v) = %x, AppendKey = %x", v, got, want)
		}
	}
}

package types

import "math"

// floatBits returns an order-irrelevant but equality-preserving bit pattern
// for a float64. NaNs are canonicalized so all NaNs hash identically;
// negative zero is canonicalized to positive zero so 0.0 and -0.0 (which
// compare equal) hash identically.
func floatBits(f float64) uint64 {
	if math.IsNaN(f) {
		return math.Float64bits(math.NaN())
	}
	if f == 0 {
		return 0
	}
	return math.Float64bits(f)
}

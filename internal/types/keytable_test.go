package types

import (
	"fmt"
	"testing"
)

func TestKeyTableInsertLookup(t *testing.T) {
	kt := NewKeyTable(8)
	var h Hasher
	for i := 0; i < 100; i++ {
		tup := Tuple{Int(int64(i)), Str(fmt.Sprintf("v%d", i))}
		hash, key := h.KeyCols(tup, []int{0, 1})
		id, added := kt.Insert(hash, key)
		if !added || id != int32(i) {
			t.Fatalf("insert %d: id=%d added=%v", i, id, added)
		}
	}
	if kt.Len() != 100 {
		t.Fatalf("Len = %d", kt.Len())
	}
	for i := 0; i < 100; i++ {
		tup := Tuple{Int(int64(i)), Str(fmt.Sprintf("v%d", i))}
		hash, key := h.KeyCols(tup, []int{0, 1})
		if id := kt.Lookup(hash, key); id != int32(i) {
			t.Fatalf("lookup %d: id=%d", i, id)
		}
		// Re-insert must return the existing id.
		id, added := kt.Insert(hash, key)
		if added || id != int32(i) {
			t.Fatalf("re-insert %d: id=%d added=%v", i, id, added)
		}
	}
	hash, key := h.KeyCols(Tuple{Int(12345), Str("absent")}, []int{0, 1})
	if id := kt.Lookup(hash, key); id != -1 {
		t.Fatalf("absent key found: id=%d", id)
	}
}

func TestKeyTableZeroValue(t *testing.T) {
	var kt KeyTable
	if id := kt.Lookup(7, []byte("x")); id != -1 {
		t.Fatalf("zero-value lookup = %d", id)
	}
	id, added := kt.Insert(7, []byte("x"))
	if !added || id != 0 {
		t.Fatalf("zero-value insert: id=%d added=%v", id, added)
	}
	if kt.Lookup(7, []byte("x")) != 0 {
		t.Fatal("zero-value table lost its key")
	}
}

// TestKeyTableCollisions feeds many distinct keys under the SAME hash: the
// table must fall back to inline key-byte verification and keep every key
// addressable, never trusting the hash alone.
func TestKeyTableCollisions(t *testing.T) {
	kt := NewKeyTable(4)
	const n = 200
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("collide-%d", i))
		id, added := kt.Insert(0xdeadbeef, key)
		if !added || id != int32(i) {
			t.Fatalf("collision insert %d: id=%d added=%v", i, id, added)
		}
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("collide-%d", i))
		if id := kt.Lookup(0xdeadbeef, key); id != int32(i) {
			t.Fatalf("collision lookup %d: id=%d", i, id)
		}
	}
	if kt.Lookup(0xdeadbeef, []byte("collide-absent")) != -1 {
		t.Fatal("collision lookup invented a key")
	}
	// A different hash with identical bytes is a different key.
	if kt.Lookup(0xfeedface, []byte("collide-0")) != -1 {
		t.Fatal("hash must participate in identity")
	}
}

// TestKeyTableGrow crosses several doublings and verifies every id and key
// survives rehashing.
func TestKeyTableGrow(t *testing.T) {
	kt := NewKeyTable(0) // start at minimum capacity
	var h Hasher
	const n = 10000
	for i := 0; i < n; i++ {
		hash, key := h.KeyCols(Tuple{Int(int64(i))}, []int{0})
		if id, added := kt.Insert(hash, key); !added || id != int32(i) {
			t.Fatalf("insert %d: id=%d added=%v", i, id, added)
		}
	}
	if kt.Len() != n {
		t.Fatalf("Len = %d", kt.Len())
	}
	for i := 0; i < n; i++ {
		hash, key := h.KeyCols(Tuple{Int(int64(i))}, []int{0})
		if id := kt.Lookup(hash, key); id != int32(i) {
			t.Fatalf("post-grow lookup %d: id=%d", i, id)
		}
		want := Tuple{Int(int64(i))}.Key([]int{0})
		if got := string(kt.Key(int32(i))); got != want {
			t.Fatalf("key bytes corrupted for id %d", i)
		}
	}
	if kt.MemSize() <= 0 {
		t.Fatal("MemSize must be positive")
	}
}

func TestHash64Deterministic(t *testing.T) {
	seen := map[uint64]int{}
	for _, n := range []int{0, 1, 3, 4, 8, 15, 16, 17, 32, 48, 49, 100, 1000} {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i * 7)
		}
		h1, h2 := Hash64(b, 0), Hash64(b, 0)
		if h1 != h2 {
			t.Fatalf("len %d: nondeterministic", n)
		}
		if n > 0 && Hash64(b, 1) == h1 {
			t.Fatalf("len %d: seed ignored", n)
		}
		if prev, dup := seen[h1]; dup {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[h1] = n
	}
	// Different inputs should (virtually always) hash differently.
	a := Hash64([]byte("hello"), 0)
	b := Hash64([]byte("hellp"), 0)
	if a == b {
		t.Fatal("trivial collision")
	}
	if Mix64(a, 0) == Mix64(a, 1) {
		t.Fatal("Mix64 must depend on both operands")
	}
}

// TestHasherMatchesAppendKeyCols pins the Hasher to the canonical encoding:
// equal tuples hash equal, cross-kind numeric equality is preserved.
func TestHasherMatchesAppendKeyCols(t *testing.T) {
	var h Hasher
	h1, k1 := h.KeyCols(Tuple{Int(3), Str("x")}, []int{0, 1})
	var h2 Hasher
	hv, k2 := h2.KeyCols(Tuple{Float(3.0), Str("x")}, []int{0, 1})
	if h1 != hv || string(k1) != string(k2) {
		t.Fatal("INTEGER 3 and DECIMAL 3.0 must produce identical keys and hashes")
	}
	want := Hash64(Tuple{Int(3), Str("x")}.AppendKeyCols(nil, []int{0, 1}), 0)
	if h1 != want {
		t.Fatal("Hasher must hash the canonical AppendKeyCols encoding with seed 0")
	}
}

// TestKeyTableReserve pins the pre-sizing hint: a reserved table holds the
// hinted key count without re-growing its slot array, the hint is a no-op
// on populated tables, and reserved tables answer identically to lazy ones.
func TestKeyTableReserve(t *testing.T) {
	var kt KeyTable
	kt.Reserve(1000)
	slots := len(kt.slots)
	if slots < 2000 {
		t.Fatalf("reserve(1000) sized %d slots, want >= 2000 (load factor headroom)", slots)
	}
	var h Hasher
	for i := 0; i < 1000; i++ {
		hash, key := h.KeyCols(Tuple{Int(int64(i))}, []int{0})
		if _, added := kt.Insert(hash, key); !added {
			t.Fatalf("key %d not added", i)
		}
	}
	if len(kt.slots) != slots {
		t.Fatalf("reserved table grew from %d to %d slots", slots, len(kt.slots))
	}
	// Reserve on a populated table must not disturb it.
	kt.Reserve(1 << 20)
	if len(kt.slots) != slots || kt.Len() != 1000 {
		t.Fatal("Reserve on a populated table must be a no-op")
	}
	for i := 0; i < 1000; i++ {
		hash, key := h.KeyCols(Tuple{Int(int64(i))}, []int{0})
		if kt.Lookup(hash, key) < 0 {
			t.Fatalf("key %d lost", i)
		}
	}
	// Non-positive hints leave the lazy defaults.
	var lazy KeyTable
	lazy.Reserve(0)
	lazy.Reserve(-5)
	if len(lazy.slots) != 0 {
		t.Fatal("non-positive hints must leave the zero value untouched")
	}
}

package optimizer

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/types"
)

// Instantiate clones the built plan into a fresh, runnable copy: every
// operator is duplicated, every injection point is replaced by a
// CloneForRun copy with zeroed runtime state (ancestor chains rewritten to
// the clones), and `?` placeholders in the plan's expressions are
// substituted with the given arguments as typed constants. The receiver is
// never mutated, so one Build result can serve as a plan-cache or
// prepared-statement template executed many times, concurrently.
//
// When args is empty and the plan carries no parameters the expression
// trees are shared with the template (they are immutable at runtime); only
// operators and points are copied.
func (r *Result) Instantiate(args []types.Value) (*Result, error) {
	in := &instantiator{args: args, pmap: make(map[*exec.Point]*exec.Point, len(r.Points))}
	root, err := in.op(r.Root)
	if err != nil {
		return nil, err
	}
	// Preserve the template's point order (it fixes the Context.Register
	// id assignment) and rewrite ancestor chains template→clone.
	points := make([]*exec.Point, len(r.Points))
	for i, p := range r.Points {
		np, ok := in.pmap[p]
		if !ok {
			return nil, fmt.Errorf("optimizer: point %q is not reachable from the plan root", p.Name)
		}
		points[i] = np
	}
	for _, np := range points {
		for i, anc := range np.Ancestors {
			mapped, ok := in.pmap[anc]
			if !ok {
				return nil, fmt.Errorf("optimizer: ancestor point %q is not reachable from the plan root", anc.Name)
			}
			np.Ancestors[i] = mapped
		}
	}
	return &Result{Root: root, Points: points, EstRows: r.EstRows}, nil
}

type instantiator struct {
	args []types.Value
	pmap map[*exec.Point]*exec.Point
}

func (in *instantiator) point(p *exec.Point) *exec.Point {
	if p == nil {
		return nil
	}
	if np, ok := in.pmap[p]; ok {
		return np
	}
	np := p.CloneForRun()
	in.pmap[p] = np
	return np
}

// expr substitutes parameters; without arguments the (immutable) template
// expression is shared.
func (in *instantiator) expr(e expr.Expr) (expr.Expr, error) {
	if e == nil || len(in.args) == 0 {
		return e, nil
	}
	return expr.BindParams(e, in.args)
}

func (in *instantiator) exprs(es []expr.Expr) ([]expr.Expr, error) {
	if len(in.args) == 0 {
		return es, nil
	}
	out := make([]expr.Expr, len(es))
	for i, e := range es {
		ne, err := expr.BindParams(e, in.args)
		if err != nil {
			return nil, err
		}
		out[i] = ne
	}
	return out, nil
}

func (in *instantiator) op(o exec.Op) (exec.Op, error) {
	switch v := o.(type) {
	case *exec.Scan:
		c := *v // table rows and schema are shared, per-run state is local to Start
		return &c, nil

	case *exec.Filter:
		child, err := in.op(v.Child)
		if err != nil {
			return nil, err
		}
		pred, err := in.expr(v.Pred)
		if err != nil {
			return nil, err
		}
		return &exec.Filter{Child: child, Pred: pred, Name: v.Name}, nil

	case *exec.Project:
		child, err := in.op(v.Child)
		if err != nil {
			return nil, err
		}
		exprs, err := in.exprs(v.Exprs)
		if err != nil {
			return nil, err
		}
		return &exec.Project{Child: child, Exprs: exprs, Sch: v.Sch, Name: v.Name}, nil

	case *exec.HashJoin:
		left, err := in.op(v.Left)
		if err != nil {
			return nil, err
		}
		right, err := in.op(v.Right)
		if err != nil {
			return nil, err
		}
		residual, err := in.expr(v.Residual)
		if err != nil {
			return nil, err
		}
		j := exec.NewHashJoin(v.Name, left, right, v.LKeys, v.RKeys, residual)
		j.LPoint = in.point(v.LPoint)
		j.RPoint = in.point(v.RPoint)
		return j, nil

	case *exec.HashAgg:
		child, err := in.op(v.Child)
		if err != nil {
			return nil, err
		}
		groupBy, err := in.exprs(v.GroupBy)
		if err != nil {
			return nil, err
		}
		aggs := v.Aggs
		if len(in.args) > 0 {
			aggs = make([]plan.AggSpec, len(v.Aggs))
			for i, a := range v.Aggs {
				na := a
				if a.Arg != nil {
					arg, err := expr.BindParams(a.Arg, in.args)
					if err != nil {
						return nil, err
					}
					na.Arg = arg
				}
				aggs[i] = na
			}
		}
		h := exec.NewHashAgg(v.Name, child, groupBy, aggs, v.Schema())
		h.Point = in.point(v.Point)
		return h, nil

	case *exec.Distinct:
		child, err := in.op(v.Child)
		if err != nil {
			return nil, err
		}
		return &exec.Distinct{Name: v.Name, Child: child, Point: in.point(v.Point)}, nil

	case *exec.Ship:
		child, err := in.op(v.Child)
		if err != nil {
			return nil, err
		}
		return &exec.Ship{Name: v.Name, Child: child, Link: v.Link, Point: in.point(v.Point), Table: v.Table, Site: v.Site}, nil

	default:
		return nil, fmt.Errorf("optimizer: cannot instantiate operator %T", o)
	}
}

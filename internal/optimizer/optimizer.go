// Package optimizer converts bound query blocks into physical push plans.
//
// Following Tukwila (§V-A), it emphasizes maximally pipelined bushy plans
// built from pipelined hash joins and hash aggregation, and its cost
// modeler needs no histograms: join selectivities come from cardinality
// estimates plus key/foreign-key information, propagated assuming uniform,
// uncorrelated attributes. Join ordering is greedy smallest-output-first
// over the join graph, which yields the bushy shapes the paper's plans
// exhibit (joins between intermediate results, not only left-deep chains).
//
// The optimizer also attaches the metadata the AIP runtime needs to every
// injection point: attribute equivalence classes, cardinality estimates,
// per-attribute domain sizes, plan depth, and ancestor chains — the
// services ESTIMATEBENEFIT (Fig. 4 of the paper) re-invokes at runtime.
package optimizer

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/network"
	"repro/internal/plan"
)

// Config carries the environmental knobs of an optimization run.
type Config struct {
	// Topology models the network for distributed relations; nil means
	// everything is local.
	Topology *network.Topology
	// Delay is applied to relations tagged Delayed in the block.
	Delay *exec.DelayConfig
	// ScanBytesPerSec paces every base-table scan like a disk stream;
	// zero means unpaced.
	ScanBytesPerSec int64
}

// Result is a physical plan plus the AIP metadata the runtime consumes.
type Result struct {
	Root   exec.Op
	Points []*exec.Point
	// EstRows is the optimizer's estimate for the final result size.
	EstRows float64
}

// Build compiles a block to a physical plan.
func Build(cfg Config, b *plan.Block) (*Result, error) {
	o := &builder{cfg: cfg}
	comp, err := o.buildBlock(b, "q")
	if err != nil {
		return nil, err
	}
	return &Result{Root: comp.op, Points: o.points, EstRows: comp.est}, nil
}

type builder struct {
	cfg    Config
	points []*exec.Point
	nextID int
}

// component is one connected piece of the join forest during ordering.
type component struct {
	op       exec.Op
	rels     map[int]bool
	colmap   map[int]int     // global col id -> position in op schema
	est      float64         // estimated output rows
	distinct map[int]float64 // global col id -> distinct estimate
	points   []*exec.Point   // injection points inside this subtree
	tables   []string        // base tables feeding this subtree
}

func (c *component) mappingFor(cols []int) (map[int]int, bool) {
	m := make(map[int]int, len(cols))
	for _, g := range cols {
		p, ok := c.colmap[g]
		if !ok {
			return nil, false
		}
		m[g] = p
	}
	return m, true
}

// newPoint allocates an injection point with the component-derived
// metadata. The point's ancestors are filled in as joins stack up.
func (o *builder) newPoint(name string, b *plan.Block, comp *component, stateful bool, site int) *exec.Point {
	sch := comp.op.Schema()
	eq := make([]int, sch.Len())
	dom := make([]float64, sch.Len())
	inv := make([]int, sch.Len())
	for i := range inv {
		inv[i] = -1
	}
	for g, p := range comp.colmap {
		inv[p] = g
	}
	for p := range eq {
		eq[p] = -1
		if g := inv[p]; g >= 0 {
			eq[p] = b.EqIDs[g]
			dom[p] = comp.distinct[g]
		}
	}
	pt := &exec.Point{
		Name:           name,
		EqIDs:          eq,
		StateEqIDs:     eq,
		Schema:         sch,
		Bank:           exec.NewFilterBank(),
		Stateful:       stateful,
		Site:           site,
		Tables:         append([]string(nil), comp.tables...),
		EstRows:        comp.est,
		DomainDistinct: dom,
	}
	o.points = append(o.points, pt)
	return pt
}

// adopt records that parent is now an ancestor of every point in comp.
func adopt(comp *component, parent *exec.Point) {
	for _, p := range comp.points {
		p.Ancestors = append(p.Ancestors, parent)
	}
}

// finalizeDepths sets Depth = number of ancestors for every point.
func (o *builder) finalizeDepths() {
	for _, p := range o.points {
		p.Depth = len(p.Ancestors)
	}
}

// ---------------------------------------------------------------------------
// Block compilation.

func (o *builder) buildBlock(b *plan.Block, prefix string) (*component, error) {
	used := make([]bool, len(b.Conjuncts))

	// 1. Build one component per relation, pushing single-relation
	// predicates down to it.
	comps := make([]*component, 0, len(b.Rels))
	for ri, rel := range b.Rels {
		comp, err := o.buildRel(b, ri, rel, used, fmt.Sprintf("%s.%s", prefix, rel.Alias))
		if err != nil {
			return nil, err
		}
		comps = append(comps, comp)
	}

	// 2. Greedy bushy join ordering.
	for len(comps) > 1 {
		bi, bj := -1, -1
		bestEst := math.Inf(1)
		bestConnected := false
		for i := 0; i < len(comps); i++ {
			for j := i + 1; j < len(comps); j++ {
				connected, est := o.joinEstimate(b, comps[i], comps[j], used)
				if connected && !bestConnected || connected == bestConnected && est < bestEst {
					bi, bj, bestEst, bestConnected = i, j, est, connected
				}
			}
		}
		joined, err := o.buildJoin(b, comps[bi], comps[bj], used, fmt.Sprintf("%s.j%d", prefix, o.nextID))
		o.nextID++
		if err != nil {
			return nil, err
		}
		next := comps[:0]
		for k, c := range comps {
			if k != bi && k != bj {
				next = append(next, c)
			}
		}
		comps = append(next, joined)
	}
	comp := comps[0]

	// 3. Any conjunct not yet applied (e.g. a single-component residual
	// discovered late) runs as a filter.
	for ci := range b.Conjuncts {
		if used[ci] {
			continue
		}
		mapped, ok := remapGlobal(b.Conjuncts[ci].E, comp)
		if !ok {
			return nil, fmt.Errorf("optimizer: conjunct %s references unavailable columns", b.Conjuncts[ci].E)
		}
		sel := predSelectivity(b.Conjuncts[ci].E)
		comp.op = &exec.Filter{Child: comp.op, Pred: mapped, Name: prefix + ".resid"}
		comp.est *= sel
		used[ci] = true
	}

	// 4. Aggregation.
	if len(b.GroupBy) > 0 || len(b.Aggs) > 0 {
		if err := o.buildAgg(b, comp, prefix); err != nil {
			return nil, err
		}
	}

	// 5. Final projection to the block's output schema.
	if err := o.buildOutput(b, comp, prefix); err != nil {
		return nil, err
	}

	// 6. DISTINCT.
	if b.Distinct {
		pt := o.newPointForOutput(b, comp, prefix+".distinct")
		d := &exec.Distinct{Name: prefix, Child: comp.op, Point: pt}
		adopt(comp, pt)
		comp.points = append(comp.points, pt)
		comp.op = d
		comp.est = math.Min(comp.est, comp.est*0.9)
	}
	o.finalizeDepths()
	return comp, nil
}

// buildRel compiles one relation reference and pushes its local predicates.
func (o *builder) buildRel(b *plan.Block, ri int, rel *plan.Rel, used []bool, name string) (*component, error) {
	comp := &component{
		rels:     map[int]bool{ri: true},
		colmap:   make(map[int]int),
		distinct: make(map[int]float64),
	}
	for i := 0; i < rel.Schema.Len(); i++ {
		comp.colmap[rel.Offset+i] = i
	}

	if rel.IsBase() {
		var delay *exec.DelayConfig
		if rel.Delayed && o.cfg.Delay != nil {
			delay = o.cfg.Delay
		}
		comp.op = &exec.Scan{
			Name:        name,
			Rows:        rel.Table.Rows,
			Sch:         rel.Schema,
			Delay:       delay,
			Table:       rel.Table.Name,
			Site:        rel.Site,
			BytesPerSec: o.cfg.ScanBytesPerSec,
		}
		comp.tables = []string{rel.Table.Name}
		comp.est = float64(rel.Table.NumRows())
		for i, c := range rel.Schema.Cols {
			comp.distinct[rel.Offset+i] = float64(rel.Table.Distinct(c.Name))
		}
	} else {
		sub, err := o.buildBlock(rel.Sub, name)
		if err != nil {
			return nil, err
		}
		// Re-key the sub-block's output columns into this block's ids.
		comp.op = sub.op
		comp.est = sub.est
		comp.points = sub.points
		comp.tables = sub.tables
		for i := 0; i < rel.Schema.Len(); i++ {
			comp.distinct[rel.Offset+i] = subOutputDistinct(rel.Sub, i, sub)
		}
	}

	// Push single-relation conjuncts.
	var preds []expr.Expr
	for ci, c := range b.Conjuncts {
		if used[ci] || len(c.Rels) != 1 || c.Rels[0] != ri {
			continue
		}
		mapped, ok := remapGlobal(c.E, comp)
		if !ok {
			continue
		}
		preds = append(preds, mapped)
		comp.est *= predSelectivity(c.E)
		used[ci] = true
	}
	if len(preds) > 0 {
		comp.op = &exec.Filter{Child: comp.op, Pred: expr.And(preds...), Name: name}
	}
	clampDistinct(comp)

	// Remote relation: evaluate local predicates at the remote site, then
	// ship across the link; the ship point lets AIP filters prune at the
	// source.
	if rel.Site != 0 && o.cfg.Topology != nil {
		link := o.cfg.Topology.LinkBetween(rel.Site, 0)
		pt := o.newPoint(name+".ship", b, comp, false, rel.Site)
		ship := &exec.Ship{Name: name, Child: comp.op, Link: link, Point: pt, Site: rel.Site}
		if len(comp.tables) > 0 {
			ship.Table = comp.tables[0]
		}
		comp.op = ship
		comp.points = append(comp.points, pt)
	}
	return comp, nil
}

// subOutputDistinct estimates distinct values of a sub-block output column.
func subOutputDistinct(sub *plan.Block, outCol int, comp *component) float64 {
	if outCol < len(sub.Output) {
		if cr, ok := sub.Output[outCol].E.(*expr.ColRef); ok {
			if len(sub.Aggs) == 0 && len(sub.GroupBy) == 0 {
				if d, ok2 := comp.distinct[cr.Idx]; ok2 {
					return math.Min(d, comp.est)
				}
			}
		}
	}
	return comp.est
}

// joinEstimate reports whether two components share an unused equi
// conjunct and the estimated output size of joining them.
func (o *builder) joinEstimate(b *plan.Block, l, r *component, used []bool) (connected bool, est float64) {
	est = l.est * r.est
	for ci, c := range b.Conjuncts {
		if used[ci] || !c.IsEqui {
			continue
		}
		lIn := l.rels[c.LRel] && r.rels[c.RRel]
		rIn := l.rels[c.RRel] && r.rels[c.LRel]
		if !lIn && !rIn {
			continue
		}
		connected = true
		dl := l.distinct[c.LCol]
		dr := r.distinct[c.RCol]
		if rIn {
			dl, dr = l.distinct[c.RCol], r.distinct[c.LCol]
		}
		d := math.Max(dl, dr)
		if d < 1 {
			d = 1
		}
		est /= d
	}
	if est < 1 {
		est = 1
	}
	return connected, est
}

// buildJoin combines two components with a pipelined hash join.
func (o *builder) buildJoin(b *plan.Block, l, r *component, used []bool, name string) (*component, error) {
	var lkeys, rkeys []int
	sel := 1.0
	// Equi conjuncts spanning exactly these two components become keys.
	for ci, c := range b.Conjuncts {
		if used[ci] || !c.IsEqui {
			continue
		}
		var lg, rg int
		switch {
		case l.rels[c.LRel] && r.rels[c.RRel]:
			lg, rg = c.LCol, c.RCol
		case l.rels[c.RRel] && r.rels[c.LRel]:
			lg, rg = c.RCol, c.LCol
		default:
			continue
		}
		lp, lok := l.colmap[lg]
		rp, rok := r.colmap[rg]
		if !lok || !rok {
			continue
		}
		lkeys = append(lkeys, lp)
		rkeys = append(rkeys, rp)
		d := math.Max(l.distinct[lg], r.distinct[rg])
		if d < 1 {
			d = 1
		}
		sel /= d
		used[ci] = true
	}

	merged := &component{
		rels:     map[int]bool{},
		colmap:   map[int]int{},
		distinct: map[int]float64{},
	}
	for ri := range l.rels {
		merged.rels[ri] = true
	}
	for ri := range r.rels {
		merged.rels[ri] = true
	}
	nl := l.op.Schema().Len()
	for g, p := range l.colmap {
		merged.colmap[g] = p
	}
	for g, p := range r.colmap {
		merged.colmap[g] = p + nl
	}
	for g, d := range l.distinct {
		merged.distinct[g] = d
	}
	for g, d := range r.distinct {
		merged.distinct[g] = d
	}
	merged.est = l.est * r.est * sel
	merged.tables = append(append([]string(nil), l.tables...), r.tables...)
	if merged.est < 1 {
		merged.est = 1
	}

	// Residual: remaining conjuncts fully contained in the merged set.
	var residuals []expr.Expr
	for ci, c := range b.Conjuncts {
		if used[ci] {
			continue
		}
		if !relsSubset(c.Rels, merged.rels) {
			continue
		}
		mapped, ok := remapGlobal(c.E, merged)
		if !ok {
			continue
		}
		residuals = append(residuals, mapped)
		merged.est *= predSelectivity(c.E)
		used[ci] = true
	}

	j := exec.NewHashJoin(name, l.op, r.op, lkeys, rkeys, expr.And(residuals...))
	j.LPoint = o.newPoint(name+".left", b, l, true, 0)
	j.LPoint.KeyCols = append([]int(nil), lkeys...)
	j.RPoint = o.newPoint(name+".right", b, r, true, 0)
	j.RPoint.KeyCols = append([]int(nil), rkeys...)
	adopt(l, j.LPoint)
	adopt(r, j.RPoint)
	merged.points = append(merged.points, l.points...)
	merged.points = append(merged.points, r.points...)
	merged.points = append(merged.points, j.LPoint, j.RPoint)
	merged.op = j
	clampDistinct(merged)
	return merged, nil
}

func relsSubset(rels []int, set map[int]bool) bool {
	for _, r := range rels {
		if !set[r] {
			return false
		}
	}
	return true
}

// buildAgg lowers grouping and aggregation, leaving comp holding the
// post-aggregation schema.
func (o *builder) buildAgg(b *plan.Block, comp *component, prefix string) error {
	groupBy := make([]expr.Expr, len(b.GroupBy))
	for i, g := range b.GroupBy {
		mapped, ok := remapGlobal(g, comp)
		if !ok {
			return fmt.Errorf("optimizer: group-by expression %s references unavailable columns", g)
		}
		groupBy[i] = mapped
	}
	aggs := make([]plan.AggSpec, len(b.Aggs))
	for i, a := range b.Aggs {
		na := a
		if a.Arg != nil {
			mapped, ok := remapGlobal(a.Arg, comp)
			if !ok {
				return fmt.Errorf("optimizer: aggregate argument %s references unavailable columns", a.Arg)
			}
			na.Arg = mapped
		}
		aggs[i] = na
	}

	pt := o.newPoint(prefix+".agg", b, comp, true, 0)
	// Group count estimate: product of group-by distincts, capped by input.
	groups := 1.0
	stateEq := make([]int, len(groupBy))
	groupSrcCols := map[int]bool{}
	for i, g := range b.GroupBy {
		stateEq[i] = -1
		if cr, ok := g.(*expr.ColRef); ok {
			stateEq[i] = b.EqIDs[cr.Idx]
			if p, ok2 := comp.colmap[cr.Idx]; ok2 {
				groupSrcCols[p] = true
			}
			if d, ok2 := comp.distinct[cr.Idx]; ok2 {
				groups *= d
			} else {
				groups *= 100
			}
		} else {
			groups *= 100
		}
	}
	groups = math.Min(groups, comp.est)
	if groups < 1 {
		groups = 1
	}
	pt.StateEqIDs = stateEq
	for i := range stateEq {
		pt.KeyCols = append(pt.KeyCols, i)
	}
	// Correctness: only group-by source columns may be probed at an
	// aggregation input. Pruning an arriving tuple on any other column
	// would silently change the aggregate of a group that survives, so
	// non-group columns are removed from the probe-eligible set (the
	// paper's filters are likewise keyed on the grouping attribute, e.g.
	// PARTKEY in Examples 3.1/3.2).
	for p := range pt.EqIDs {
		if !groupSrcCols[p] {
			pt.EqIDs[p] = -1
		}
	}

	agg := exec.NewHashAgg(prefix, comp.op, groupBy, aggs, b.PostAggSchema())
	agg.Point = pt
	adopt(comp, pt)
	comp.points = append(comp.points, pt)
	comp.op = agg
	comp.est = groups

	// The component now produces the post-agg schema: rewire colmap so the
	// output step can bind against it (post-agg positions are "virtual"
	// globals; buildOutput binds positionally instead).
	comp.colmap = nil
	comp.distinct = nil
	return nil
}

// buildOutput projects the block's output expressions.
func (o *builder) buildOutput(b *plan.Block, comp *component, prefix string) error {
	exprs := make([]expr.Expr, len(b.Output))
	aggregated := len(b.GroupBy) > 0 || len(b.Aggs) > 0
	for i, out := range b.Output {
		if aggregated {
			// Already bound against the post-agg schema, which is exactly
			// comp.op's schema.
			exprs[i] = out.E
			continue
		}
		mapped, ok := remapGlobal(out.E, comp)
		if !ok {
			return fmt.Errorf("optimizer: output %s references unavailable columns", out.E)
		}
		exprs[i] = mapped
	}
	outSchema := b.OutputSchema()

	// Identity projection elision: skip when outputs are exactly the
	// child's columns in order.
	if !aggregated || len(exprs) != comp.op.Schema().Len() {
		comp.op = &exec.Project{Child: comp.op, Exprs: exprs, Sch: outSchema, Name: prefix}
	} else {
		identity := true
		for i, e := range exprs {
			cr, ok := e.(*expr.ColRef)
			if !ok || cr.Idx != i {
				identity = false
				break
			}
		}
		if !identity {
			comp.op = &exec.Project{Child: comp.op, Exprs: exprs, Sch: outSchema, Name: prefix}
		}
	}
	return nil
}

// newPointForOutput builds a point whose schema is the block's output; the
// equivalence ids flow through output column provenance.
func (o *builder) newPointForOutput(b *plan.Block, comp *component, name string) *exec.Point {
	outEq := blockOutputEq(b)
	pt := &exec.Point{
		Name:           name,
		EqIDs:          outEq,
		StateEqIDs:     outEq,
		Schema:         comp.op.Schema(),
		Bank:           exec.NewFilterBank(),
		Stateful:       true,
		Tables:         append([]string(nil), comp.tables...),
		EstRows:        comp.est,
		DomainDistinct: make([]float64, len(outEq)),
	}
	for i := range outEq {
		pt.KeyCols = append(pt.KeyCols, i)
	}
	o.points = append(o.points, pt)
	return pt
}

// blockOutputEq computes the equivalence class of each output column (-1
// for computed columns), mirroring the binder's propagation rule.
func blockOutputEq(b *plan.Block) []int {
	out := make([]int, len(b.Output))
	for i, o := range b.Output {
		out[i] = -1
		if len(b.Aggs) > 0 || len(b.GroupBy) > 0 {
			if cr, ok := o.E.(*expr.ColRef); ok && cr.Idx < len(b.GroupBy) {
				if src, ok2 := b.GroupBy[cr.Idx].(*expr.ColRef); ok2 {
					out[i] = b.EqIDs[src.Idx]
				}
			}
			continue
		}
		if cr, ok := o.E.(*expr.ColRef); ok {
			out[i] = b.EqIDs[cr.Idx]
		}
	}
	return out
}

// remapGlobal rewrites a global-bound expression into component positions.
func remapGlobal(e expr.Expr, comp *component) (expr.Expr, bool) {
	if comp.colmap == nil {
		return nil, false
	}
	cols := expr.CollectCols(e, nil)
	m, ok := comp.mappingFor(cols)
	if !ok {
		return nil, false
	}
	return expr.Remap(e, m)
}

// clampDistinct caps per-column distinct estimates at the component's
// cardinality estimate.
func clampDistinct(c *component) {
	for g, d := range c.distinct {
		if d > c.est {
			c.distinct[g] = c.est
		}
		if c.distinct[g] < 1 {
			c.distinct[g] = 1
		}
	}
}

// predSelectivity is the histogram-free selectivity heuristic of §V-A.
func predSelectivity(e expr.Expr) float64 {
	switch v := e.(type) {
	case *expr.Binary:
		switch v.Op {
		case expr.OpEq:
			// col = const: moderately selective without distinct info at
			// this layer; the caller's distinct-aware paths refine this.
			if isConstComparison(v) {
				return 0.05
			}
			return 0.1
		case expr.OpNe:
			return 0.9
		case expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
			return 0.33
		case expr.OpAnd:
			return predSelectivity(v.L) * predSelectivity(v.R)
		case expr.OpOr:
			s := predSelectivity(v.L) + predSelectivity(v.R)
			return math.Min(s, 1)
		}
	case *expr.Like:
		if v.Negate {
			return 0.9
		}
		return 0.1
	case *expr.Not:
		return 1 - predSelectivity(v.E)
	}
	return 0.25
}

func isConstComparison(b *expr.Binary) bool {
	return isConstLike(b.L) != isConstLike(b.R) // exactly one side constant
}

// isConstLike treats prepared-statement parameters like the constants they
// become at execute time, so parameterized plans get the same selectivity
// estimates as their literal-constant equivalents.
func isConstLike(e expr.Expr) bool {
	switch e.(type) {
	case *expr.Const, *expr.Param:
		return true
	}
	return false
}

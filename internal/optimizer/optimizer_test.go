package optimizer

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/tpch"
	"repro/internal/types"
)

func bind(t *testing.T, sql string) *plan.Block {
	t.Helper()
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002})
	blk, err := plan.BindSQL(cat, sql)
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

func buildAndRun(t *testing.T, sql string) ([]types.Tuple, *Result) {
	t.Helper()
	blk := bind(t, sql)
	res, err := Build(Config{}, blk)
	if err != nil {
		t.Fatal(err)
	}
	ctx := exec.NewContext(stats.NewRegistry(), nil)
	for _, p := range res.Points {
		ctx.Register(p)
	}
	rows, err := exec.Run(ctx, res.Root)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rows, res
}

func TestScanWithPushedPredicate(t *testing.T) {
	rows, _ := buildAndRun(t, "SELECT n_name FROM nation WHERE n_regionkey = 3")
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 European nations", len(rows))
	}
}

func TestTwoWayJoin(t *testing.T) {
	rows, _ := buildAndRun(t, `
		SELECT s_name, n_name FROM supplier, nation
		WHERE s_nationkey = n_nationkey`)
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002})
	sup, _ := cat.Table("supplier")
	if int64(len(rows)) != sup.NumRows() {
		t.Fatalf("FK join must preserve supplier cardinality: %d vs %d", len(rows), sup.NumRows())
	}
}

func TestCrossJoinWithoutPredicate(t *testing.T) {
	rows, _ := buildAndRun(t, `SELECT r_name, n_name FROM region, nation`)
	if len(rows) != 5*25 {
		t.Fatalf("cross join = %d rows, want 125", len(rows))
	}
}

func TestResidualPredicate(t *testing.T) {
	// Non-equi cross-relation predicate must be applied as a residual.
	rows, _ := buildAndRun(t, `
		SELECT r_regionkey, n_nationkey FROM region, nation
		WHERE n_nationkey < r_regionkey`)
	for _, r := range rows {
		rk, _ := r[0].AsInt()
		nk, _ := r[1].AsInt()
		if nk >= rk {
			t.Fatalf("residual violated: %v", r)
		}
	}
	if len(rows) == 0 {
		t.Fatal("residual join produced nothing")
	}
}

func TestBushyShapeForFourWayJoin(t *testing.T) {
	blk := bind(t, `
		SELECT p_name FROM part, partsupp, supplier, nation
		WHERE p_partkey = ps_partkey AND ps_suppkey = s_suppkey
		  AND s_nationkey = n_nationkey`)
	res, err := Build(Config{}, blk)
	if err != nil {
		t.Fatal(err)
	}
	// 3 joins → 6 join points (plus agg/ship as applicable).
	joins := 0
	for _, p := range res.Points {
		if strings.Contains(p.Name, ".j") {
			joins++
		}
	}
	if joins != 6 {
		t.Fatalf("join points = %d, want 6", joins)
	}
}

func TestPointMetadata(t *testing.T) {
	blk := bind(t, `
		SELECT p_name FROM part, partsupp, supplier
		WHERE p_partkey = ps_partkey AND ps_suppkey = s_suppkey`)
	res, err := Build(Config{}, blk)
	if err != nil {
		t.Fatal(err)
	}
	depths := map[int]bool{}
	for _, p := range res.Points {
		if !p.Stateful {
			continue
		}
		depths[p.Depth] = true
		if p.EstRows <= 0 {
			t.Fatalf("point %s has no cardinality estimate", p.Name)
		}
		if len(p.KeyCols) == 0 {
			t.Fatalf("stateful point %s has no key columns", p.Name)
		}
		for _, kc := range p.KeyCols {
			if kc < 0 || kc >= len(p.StateEqIDs) {
				t.Fatalf("point %s key col %d out of range", p.Name, kc)
			}
		}
		// Depth must equal ancestor count.
		if p.Depth != len(p.Ancestors) {
			t.Fatalf("point %s depth %d != ancestors %d", p.Name, p.Depth, len(p.Ancestors))
		}
	}
	// A 3-relation chain has points at ≥2 distinct depths.
	if len(depths) < 2 {
		t.Fatalf("expected a multi-level plan, depths = %v", depths)
	}
}

func TestEquivalenceClassesOnPoints(t *testing.T) {
	blk := bind(t, `
		SELECT p_name FROM part, partsupp
		WHERE p_partkey = ps_partkey`)
	res, err := Build(Config{}, blk)
	if err != nil {
		t.Fatal(err)
	}
	// Both join inputs must expose the same class on their key column.
	var classes []int
	for _, p := range res.Points {
		if !p.Stateful {
			continue
		}
		classes = append(classes, p.StateEqIDs[p.KeyCols[0]])
	}
	if len(classes) != 2 || classes[0] != classes[1] || classes[0] < 0 {
		t.Fatalf("join key classes = %v", classes)
	}
}

func TestAggMasksNonGroupColumns(t *testing.T) {
	blk := bind(t, `
		SELECT n_name, sum(s_acctbal) FROM supplier, nation
		WHERE s_nationkey = n_nationkey GROUP BY n_name`)
	res, err := Build(Config{}, blk)
	if err != nil {
		t.Fatal(err)
	}
	var agg *exec.Point
	for _, p := range res.Points {
		if strings.Contains(p.Name, ".agg") {
			agg = p
		}
	}
	if agg == nil {
		t.Fatal("agg point missing")
	}
	// Correctness invariant: every probe-eligible input column of an
	// aggregation must be a group-by source column. n_name is the only
	// group key; its source column may carry a class, everything else must
	// be masked to -1.
	eligible := 0
	for _, id := range agg.EqIDs {
		if id >= 0 {
			eligible++
		}
	}
	if eligible > 1 {
		t.Fatalf("agg point exposes %d probe-eligible columns, want ≤1", eligible)
	}
}

func TestAggregationValues(t *testing.T) {
	rows, _ := buildAndRun(t, `
		SELECT n_regionkey, count(*) FROM nation GROUP BY n_regionkey`)
	if len(rows) != 5 {
		t.Fatalf("groups = %d", len(rows))
	}
	var total int64
	for _, r := range rows {
		c, _ := r[1].AsInt()
		total += c
	}
	if total != 25 {
		t.Fatalf("counts sum to %d, want 25", total)
	}
}

func TestDistinctPlan(t *testing.T) {
	rows, res := buildAndRun(t, `SELECT DISTINCT n_regionkey FROM nation`)
	if len(rows) != 5 {
		t.Fatalf("distinct rows = %d", len(rows))
	}
	found := false
	for _, p := range res.Points {
		if strings.Contains(p.Name, "distinct") {
			found = true
		}
	}
	if !found {
		t.Fatal("distinct point missing")
	}
}

func TestDelayedRelationGetsDelay(t *testing.T) {
	blk := bind(t, "SELECT ps_availqty FROM partsupp")
	blk.Rels[0].Delayed = true
	cfg := Config{Delay: &exec.DelayConfig{EveryN: 100, Pause: 1}}
	res, err := Build(cfg, blk)
	if err != nil {
		t.Fatal(err)
	}
	scan := findScan(res.Root)
	if scan == nil || scan.Delay == nil {
		t.Fatal("delay not applied to tagged relation")
	}
}

func findScan(op exec.Op) *exec.Scan {
	switch v := op.(type) {
	case *exec.Scan:
		return v
	case *exec.Filter:
		return findScan(v.Child)
	case *exec.Project:
		return findScan(v.Child)
	case *exec.Ship:
		return findScan(v.Child)
	case *exec.Distinct:
		return findScan(v.Child)
	case *exec.HashJoin:
		if s := findScan(v.Left); s != nil {
			return s
		}
		return findScan(v.Right)
	case *exec.HashAgg:
		return findScan(v.Child)
	}
	return nil
}

func TestPredSelectivityHeuristics(t *testing.T) {
	blk := bind(t, `SELECT p_name FROM part WHERE p_size = 1`)
	eq := predSelectivity(blk.Conjuncts[0].E)
	blk2 := bind(t, `SELECT p_name FROM part WHERE p_size < 10`)
	rng := predSelectivity(blk2.Conjuncts[0].E)
	blk3 := bind(t, `SELECT p_name FROM part WHERE p_type LIKE '%TIN'`)
	like := predSelectivity(blk3.Conjuncts[0].E)
	if !(eq < rng) {
		t.Fatalf("equality (%v) must be more selective than range (%v)", eq, rng)
	}
	if like <= 0 || like >= 1 || rng >= 1 {
		t.Fatal("selectivities out of (0,1)")
	}
	blk4 := bind(t, `SELECT p_name FROM part WHERE p_size <> 1`)
	if ne := predSelectivity(blk4.Conjuncts[0].E); ne <= rng {
		t.Fatal("<> must be weakly selective")
	}
}

func TestEstimateOrderingPrefersSelectiveJoins(t *testing.T) {
	// The greedy planner must join region⋈nation before touching supplier:
	// verify by checking the final estimate is finite and the plan runs.
	rows, res := buildAndRun(t, `
		SELECT s_name FROM supplier, nation, region
		WHERE s_nationkey = n_nationkey AND n_regionkey = r_regionkey
		  AND r_name = 'EUROPE'`)
	if res.EstRows <= 0 {
		t.Fatal("estimate missing")
	}
	// All suppliers in European nations.
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002})
	sup, _ := cat.Table("supplier")
	nkIdx := sup.ColumnIndex("s_nationkey")
	euro := map[int64]bool{6: true, 7: true, 18: true, 21: true, 22: true}
	want := 0
	for _, r := range sup.Rows {
		nk, _ := r[nkIdx].AsInt()
		if euro[nk] {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
}

func TestProjectionEliminatesIdentity(t *testing.T) {
	// Aggregated output matching the post-agg schema must skip the
	// projection operator (cosmetic but keeps plans tight).
	blk := bind(t, `SELECT n_regionkey, count(*) FROM nation GROUP BY n_regionkey`)
	res, err := Build(Config{}, blk)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Root.(*exec.Project); ok {
		t.Fatal("identity projection not elided")
	}
}

func TestOrderedOutputsDeterministic(t *testing.T) {
	// Two builds of the same block produce plans with identical results.
	sql := `SELECT n_name, count(*) FROM supplier, nation
	        WHERE s_nationkey = n_nationkey GROUP BY n_name`
	a, _ := buildAndRun(t, sql)
	b, _ := buildAndRun(t, sql)
	canon := func(rows []types.Tuple) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = r.String()
		}
		sort.Strings(out)
		return out
	}
	ca, cb := canon(a), canon(b)
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("plans disagree: %s vs %s", ca[i], cb[i])
		}
	}
}

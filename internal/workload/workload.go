// Package workload defines the experiment queries of the paper's Table I:
// variations on TPC-H Q2 (Q1A–Q1E), TPC-H Q17 (Q2A–Q2E), the IBM
// decorrelation query of Seshadri et al. (Q3A–Q3E), TPC-H Q5 (Q4A/Q4B),
// and TPC-H Q9 (Q5A/Q5B), plus each experiment's environment: skewed data,
// delayed PARTSUPP, or a remote PARTSUPP site.
//
// Selectivity constants that the paper states for 1 GB data (e.g.
// "l_suppkey < 1000" out of 10,000 suppliers) are expressed as fractions of
// the generated table sizes so the variants keep the paper's selectivities
// at any scale factor.
package workload

import (
	"fmt"

	"repro/internal/catalog"
)

// Spec is one experiment query.
type Spec struct {
	// ID is the paper's query name (Q1A … Q5B).
	ID string
	// Desc summarizes the variant.
	Desc string
	// Skewed selects the Zipf z=0.5 data set (the paper's "skewed" runs).
	Skewed bool
	// Remote maps table names to remote sites for the distributed runs.
	Remote map[string]int
	// sql builds the query text given the catalog (for scale-aware
	// constants).
	sql func(c *catalog.Catalog) string
}

// SQL renders the query text against the given catalog.
func (s Spec) SQL(c *catalog.Catalog) string { return s.sql(c) }

// tableRows returns a table's cardinality (0 when absent).
func tableRows(c *catalog.Catalog, name string) int64 {
	t, err := c.Table(name)
	if err != nil {
		return 0
	}
	return t.NumRows()
}

// frac returns max(1, n*f) for selectivity-preserving constants.
func frac(n int64, f float64) int64 {
	v := int64(float64(n) * f)
	if v < 1 {
		v = 1
	}
	return v
}

// --------------------------------------------------------------------------
// TPC-H Q2 family (Q1A–Q1E).

// q1 builds the TPC-H Q2 variants. parentPred/childPred toggle the
// weakened forms.
func q1(parentSize, parentType, parentRegion, childRegion string) func(*catalog.Catalog) string {
	return func(*catalog.Catalog) string {
		return fmt.Sprintf(`
SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment
FROM part, supplier, partsupp, nation, region
WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
  %s %s
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  %s
  AND ps_supplycost = (SELECT min(ps_supplycost)
       FROM partsupp, supplier, nation, region
       WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
         AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
         %s)`, parentSize, parentType, parentRegion, childRegion)
	}
}

// --------------------------------------------------------------------------
// TPC-H Q17 family (Q2A–Q2E).

// q2 builds the TPC-H Q17 variants. extraParent adds a parent predicate;
// childPred adds a predicate inside the subquery. The paper's Q2D
// strengthens the child with "p_partkey < 1000"; since that correlated
// range form is outside our decorrelator's fragment, the equivalent
// restriction on the child's own l_partkey is used (same tuples pass: the
// correlation equates the two attributes).
func q2(brandPred, extraParent, childPred string) func(*catalog.Catalog) string {
	return func(*catalog.Catalog) string {
		return fmt.Sprintf(`
SELECT sum(l_extendedprice) / 7.0
FROM lineitem, part
WHERE p_partkey = l_partkey
  %s
  AND p_container = 'MED CAN'
  %s
  AND l_quantity < (SELECT 0.2 * avg(l_quantity) FROM lineitem
       WHERE l_partkey = p_partkey %s)`, brandPred, extraParent, childPred)
	}
}

// --------------------------------------------------------------------------
// IBM decorrelation query family (Q3A–Q3E).

// q3 builds the IBM query variants. The generated parts have three-token
// type strings, so the paper's p_type = 'BRASS' is expressed as the suffix
// match p_type LIKE '%%BRASS'.
func q3(sizePred, nationParent, nationChild string) func(*catalog.Catalog) string {
	return func(*catalog.Catalog) string {
		return fmt.Sprintf(`
SELECT s_name, s_acctbal, s_address, s_phone, s_comment
FROM part, supplier, partsupp
WHERE %s %s p_type LIKE '%%BRASS'
  AND p_partkey = ps_partkey AND s_suppkey = ps_suppkey
  AND ps_supplycost = (SELECT min(ps_supplycost) FROM partsupp, supplier
       WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey
         AND %s)`, nationParent, sizePred, nationChild)
	}
}

// --------------------------------------------------------------------------
// TPC-H Q5 (Q4A/Q4B) and Q9 (Q5A/Q5B).

func q4(extra string) func(*catalog.Catalog) string {
	return func(c *catalog.Catalog) string {
		pred := ""
		if extra == "fewer-suppliers" {
			pred = fmt.Sprintf("AND l_suppkey < %d", frac(tableRows(c, "supplier"), 0.10))
		}
		return fmt.Sprintf(`
SELECT n_name, sum(l_extendedprice * (1 - l_discount))
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND r_name = 'MIDDLE EAST'
  AND o_orderdate >= '1995-01-01' AND o_orderdate < '1996-01-01'
  %s
GROUP BY n_name`, pred)
	}
}

func q5(extra string) func(*catalog.Catalog) string {
	return func(*catalog.Catalog) string {
		pred := ""
		if extra == "fewer-nations" {
			pred = "AND n_nationkey < 10"
		}
		return fmt.Sprintf(`
SELECT n_name, o_year, sum(amount)
FROM (SELECT n_name, year(o_orderdate) AS o_year,
        l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity AS amount,
        n_nationkey
      FROM part, supplier, lineitem, partsupp, orders, nation
      WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey
        AND ps_partkey = l_partkey AND p_partkey = l_partkey
        AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
        AND p_name LIKE '%%black%%' %s) profit
GROUP BY n_name, o_year`, pred)
	}
}

// --------------------------------------------------------------------------
// The query table.

var all = []Spec{
	{ID: "Q1A", Desc: "TPC-H Q2, normal",
		sql: q1("AND p_size = 1", "AND p_type LIKE '%TIN'", "AND r_name = 'AFRICA'", "AND r_name = 'AFRICA'")},
	{ID: "Q1B", Desc: "TPC-H Q2, skewed data", Skewed: true,
		sql: q1("AND p_size = 1", "AND p_type LIKE '%TIN'", "AND r_name = 'AFRICA'", "AND r_name = 'AFRICA'")},
	{ID: "Q1C", Desc: "TPC-H Q2, remote PARTSUPP", Remote: map[string]int{"partsupp": 1},
		sql: q1("AND p_size = 1", "AND p_type LIKE '%TIN'", "AND r_name = 'AFRICA'", "AND r_name = 'AFRICA'")},
	{ID: "Q1D", Desc: "TPC-H Q2, child weaker",
		sql: q1("AND p_size = 1", "", "AND r_name = 'AFRICA'", "AND r_name < 'S'")},
	{ID: "Q1E", Desc: "TPC-H Q2, parent weaker",
		sql: q1("AND p_size = 1", "AND p_type < 'TIN'", "AND r_name < 'S'", "AND r_name = 'AFRICA'")},

	{ID: "Q2A", Desc: "TPC-H Q17, normal",
		sql: q2("AND p_brand = 'Brand#34'", "", "")},
	{ID: "Q2B", Desc: "TPC-H Q17, skewed data", Skewed: true,
		sql: q2("AND p_brand = 'Brand#34'", "", "")},
	{ID: "Q2C", Desc: "TPC-H Q17, parent stronger",
		sql: q2("AND p_brand = 'Brand#34'", "AND l_partkey < 1000", "")},
	{ID: "Q2D", Desc: "TPC-H Q17, child stronger",
		sql: q2("AND p_brand = 'Brand#34'", "", "AND l_partkey < 1000")},
	{ID: "Q2E", Desc: "TPC-H Q17, parent weaker (no brand predicate)",
		sql: q2("", "", "")},

	{ID: "Q3A", Desc: "IBM query, normal",
		sql: q3("AND p_size = 15 AND", "s_nation = 'FRANCE'", "s_nation = 'FRANCE'")},
	{ID: "Q3B", Desc: "IBM query, skewed data", Skewed: true,
		sql: q3("AND p_size = 15 AND", "s_nation = 'FRANCE'", "s_nation = 'FRANCE'")},
	{ID: "Q3C", Desc: "IBM query, remote PARTSUPP", Remote: map[string]int{"partsupp": 1},
		sql: q3("AND p_size = 15 AND", "s_nation = 'FRANCE'", "s_nation = 'FRANCE'")},
	{ID: "Q3D", Desc: "IBM query, child weaker",
		sql: q3("AND p_size = 15 AND", "s_nation = 'FRANCE'", "s_nation >= 'FRANCE'")},
	{ID: "Q3E", Desc: "IBM query, parent weaker (no size predicate)",
		sql: q3("AND", "s_nation = 'FRANCE'", "s_nation = 'FRANCE'")},

	{ID: "Q4A", Desc: "TPC-H Q5, normal", sql: q4("")},
	{ID: "Q4B", Desc: "TPC-H Q5, fewer suppliers", sql: q4("fewer-suppliers")},

	{ID: "Q5A", Desc: "TPC-H Q9, normal", sql: q5("")},
	{ID: "Q5B", Desc: "TPC-H Q9, fewer nations", sql: q5("fewer-nations")},
}

// Queries returns every experiment query in Table I order.
func Queries() []Spec {
	out := make([]Spec, len(all))
	copy(out, all)
	return out
}

// ByID looks up one query.
func ByID(id string) (Spec, error) {
	for _, s := range all {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown query %q", id)
}

// Figure describes one of the paper's experiment figures.
type Figure struct {
	Number  int
	Title   string
	Metric  string // "time" or "state"
	Queries []string
	// Strategies by name ("Baseline", "Magic", "Feed-forward",
	// "Cost-based"); Figures 13/14 omit Magic as in the paper.
	Strategies []string
	// Delayed names the tables delayed per §VI-B for this figure. The
	// paper delays PARTSUPP; the Q17 family does not read PARTSUPP, so its
	// delayed runs (Figures 10/12) delay LINEITEM, its largest input.
	Delayed map[string][]string
}

var q2IBM = []string{"Q3A", "Q3B", "Q3D", "Q3E", "Q1A", "Q1B", "Q1D", "Q1E"}
var q17s = []string{"Q2A", "Q2B", "Q2C", "Q2D", "Q2E"}
var joins = []string{"Q4A", "Q5A", "Q4B", "Q5B", "Q3C", "Q1C"}

var fourStrategies = []string{"Baseline", "Magic", "Feed-forward", "Cost-based"}
var threeStrategies = []string{"Baseline", "Feed-forward", "Cost-based"}

func delayPartsupp(qs []string) map[string][]string {
	m := map[string][]string{}
	for _, q := range qs {
		m[q] = []string{"partsupp"}
	}
	return m
}

func delayLineitem(qs []string) map[string][]string {
	m := map[string][]string{}
	for _, q := range qs {
		m[q] = []string{"lineitem"}
	}
	return m
}

var figures = []Figure{
	{5, "Running times: variations on TPC-H Query 2 and the IBM query", "time", q2IBM, fourStrategies, nil},
	{6, "Running times: variations on TPC-H Query 17", "time", q17s, fourStrategies, nil},
	{7, "Space usage: variations on TPC-H Query 2 and IBM variant", "state", q2IBM, fourStrategies, nil},
	{8, "Space usage: variations on TPC-H Query 17", "state", q17s, fourStrategies, nil},
	{9, "Running times with delayed PARTSUPP: TPC-H Query 2 and IBM variant", "time", q2IBM, fourStrategies, delayPartsupp(q2IBM)},
	{10, "Running times with delayed input: TPC-H Query 17", "time", q17s, fourStrategies, delayLineitem(q17s)},
	{11, "Space usage under delay: TPC-H Query 2 and IBM variant", "state", q2IBM, fourStrategies, delayPartsupp(q2IBM)},
	{12, "Space usage under delay: TPC-H Query 17", "state", q17s, fourStrategies, delayLineitem(q17s)},
	{13, "Running times for join and distributed join queries", "time", joins, threeStrategies, nil},
	{14, "Space usage for join and distributed join queries", "state", joins, threeStrategies, nil},
}

// Figures returns the experiment figure index (5–14).
func Figures() []Figure {
	out := make([]Figure, len(figures))
	copy(out, figures)
	return out
}

// FigureByNumber returns one figure definition.
func FigureByNumber(n int) (Figure, error) {
	for _, f := range figures {
		if f.Number == n {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("workload: no figure %d (valid: 5-14)", n)
}

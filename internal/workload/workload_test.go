package workload

import (
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/tpch"
)

func TestQueriesComplete(t *testing.T) {
	want := []string{
		"Q1A", "Q1B", "Q1C", "Q1D", "Q1E",
		"Q2A", "Q2B", "Q2C", "Q2D", "Q2E",
		"Q3A", "Q3B", "Q3C", "Q3D", "Q3E",
		"Q4A", "Q4B", "Q5A", "Q5B",
	}
	got := Queries()
	if len(got) != len(want) {
		t.Fatalf("query count = %d, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("query %d = %s, want %s", i, got[i].ID, id)
		}
	}
}

func TestByID(t *testing.T) {
	s, err := ByID("Q2C")
	if err != nil || s.ID != "Q2C" {
		t.Fatalf("ByID: %v", err)
	}
	if _, err := ByID("Q9Z"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestVariantFlags(t *testing.T) {
	for _, id := range []string{"Q1B", "Q2B", "Q3B"} {
		s, _ := ByID(id)
		if !s.Skewed {
			t.Errorf("%s must use skewed data", id)
		}
	}
	for _, id := range []string{"Q1C", "Q3C"} {
		s, _ := ByID(id)
		if s.Remote["partsupp"] != 1 {
			t.Errorf("%s must place partsupp remotely", id)
		}
	}
	s, _ := ByID("Q1A")
	if s.Skewed || len(s.Remote) != 0 {
		t.Error("Q1A must be plain")
	}
}

func TestAllQueriesBind(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002})
	for _, s := range Queries() {
		if _, err := plan.BindSQL(cat, s.SQL(cat)); err != nil {
			t.Errorf("%s does not bind: %v", s.ID, err)
		}
	}
}

func TestScaleAwareConstants(t *testing.T) {
	small := tpch.Generate(tpch.Config{ScaleFactor: 0.002})
	big := tpch.Generate(tpch.Config{ScaleFactor: 0.01})
	q4b, _ := ByID("Q4B")
	if q4b.SQL(small) == q4b.SQL(big) {
		t.Fatal("Q4B's supplier constant must scale with the data")
	}
	// 10% of suppliers: 0.01 SF → 100 suppliers → l_suppkey < 10.
	if !strings.Contains(q4b.SQL(big), "l_suppkey < 10") {
		t.Fatalf("Q4B constant wrong:\n%s", q4b.SQL(big))
	}
}

func TestVariantPredicatesDiffer(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002})
	pairs := [][2]string{
		{"Q1A", "Q1D"}, {"Q1A", "Q1E"},
		{"Q2A", "Q2C"}, {"Q2A", "Q2D"}, {"Q2A", "Q2E"},
		{"Q3A", "Q3D"}, {"Q3A", "Q3E"},
		{"Q4A", "Q4B"}, {"Q5A", "Q5B"},
	}
	for _, p := range pairs {
		a, _ := ByID(p[0])
		b, _ := ByID(p[1])
		if a.SQL(cat) == b.SQL(cat) {
			t.Errorf("%s and %s have identical SQL", p[0], p[1])
		}
	}
	// Skew variants share SQL with their base query (only the data set
	// changes).
	a, _ := ByID("Q1A")
	b, _ := ByID("Q1B")
	if a.SQL(cat) != b.SQL(cat) {
		t.Error("Q1A and Q1B must share query text")
	}
}

func TestFigures(t *testing.T) {
	figs := Figures()
	if len(figs) != 10 {
		t.Fatalf("figures = %d, want 10 (5..14)", len(figs))
	}
	for _, f := range figs {
		if len(f.Queries) == 0 || len(f.Strategies) == 0 {
			t.Errorf("figure %d is empty", f.Number)
		}
		for _, q := range f.Queries {
			if _, err := ByID(q); err != nil {
				t.Errorf("figure %d references unknown query %s", f.Number, q)
			}
		}
		switch f.Metric {
		case "time", "state":
		default:
			t.Errorf("figure %d has bad metric %q", f.Number, f.Metric)
		}
	}
	// Figures 13/14 omit Magic, matching the paper.
	f13, _ := FigureByNumber(13)
	for _, s := range f13.Strategies {
		if s == "Magic" {
			t.Fatal("figure 13 must not include Magic")
		}
	}
	// Delay figures carry delay assignments.
	f9, _ := FigureByNumber(9)
	if f9.Delayed["Q1A"] == nil {
		t.Fatal("figure 9 must delay PARTSUPP for Q1A")
	}
	f10, _ := FigureByNumber(10)
	if len(f10.Delayed["Q2A"]) == 0 {
		t.Fatal("figure 10 must delay an input for Q2A")
	}
	if _, err := FigureByNumber(4); err == nil {
		t.Fatal("figure 4 does not exist")
	}
}

func TestFracHelper(t *testing.T) {
	if frac(100, 0.1) != 10 {
		t.Fatal("frac wrong")
	}
	if frac(1, 0.001) != 1 {
		t.Fatal("frac must floor at 1")
	}
}

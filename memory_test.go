package sip

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/types"
)

// spillSQL joins lineitem to orders and aggregates — join build state plus
// aggregation groups, the two stateful footprints the memory budget caps.
const spillSQL = `SELECT o_orderdate, count(*)
	FROM lineitem, orders WHERE l_orderkey = o_orderkey GROUP BY o_orderdate`

// spillEngine is sized so the query's working set is big enough that a
// quarter-budget meaningfully forces out-of-core execution.
func spillEngine(t testing.TB) *Engine {
	t.Helper()
	return NewEngine(GenerateTPCH(DataConfig{ScaleFactor: 0.01}))
}

// TestQuerySpillDifferential is the end-to-end acceptance property: with a
// budget of a quarter of the query's unbounded peak (so the working set is
// 4x the budget), the query must complete with byte-identical results on
// both schedulers and across execution strategies, while actually spilling
// and holding the tracked peak near the budget.
func TestQuerySpillDifferential(t *testing.T) {
	eng := spillEngine(t)
	ctx := context.Background()

	base, err := eng.Query(ctx, spillSQL, Options{Parallelism: 4})
	if err != nil {
		t.Fatalf("unbounded run: %v", err)
	}
	if base.SpillEvents != 0 {
		t.Fatalf("unbounded run spilled %d times", base.SpillEvents)
	}
	peak := base.PeakMemBytes
	if peak < 64<<10 {
		t.Fatalf("unbounded peak %d B too small to exercise spilling", peak)
	}
	want := canon(base.Rows)
	budget := peak / 4

	for _, sched := range []string{SchedulerChan, SchedulerMorsel} {
		for _, strat := range []Strategy{Baseline, FeedForward, CostBased} {
			name := fmt.Sprintf("%s/%s", sched, strat)
			res, err := eng.Query(ctx, spillSQL, Options{
				Scheduler: sched, Strategy: strat, MemBudget: budget, Parallelism: 4,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got := canon(res.Rows)
			if len(got) != len(want) {
				t.Fatalf("%s: %d rows, want %d", name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: row %d = %q, want %q", name, i, got[i], want[i])
				}
			}
			if res.SpillEvents == 0 || res.SpillBytes == 0 {
				t.Fatalf("%s: no spill activity at budget %d (peak %d)", name, budget, peak)
			}
			slack := budget/2 + 256<<10
			if res.PeakMemBytes > budget+slack {
				t.Fatalf("%s: peak %d exceeds budget %d + slack %d",
					name, res.PeakMemBytes, budget, slack)
			}
		}
	}
}

// TestQueryBudgetError: a budget too small for even the maximum spill-merge
// fan-out surfaces the typed *BudgetError through the public API.
func TestQueryBudgetError(t *testing.T) {
	eng := spillEngine(t)
	for _, sched := range []string{SchedulerChan, SchedulerMorsel} {
		_, err := eng.Query(context.Background(), spillSQL, Options{
			Scheduler: sched, MemBudget: 2 << 10, Parallelism: 4,
		})
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("%s: err = %v, want *BudgetError", sched, err)
		}
		if be.Need <= be.Budget {
			t.Fatalf("%s: BudgetError.Need %d not above budget %d", sched, be.Need, be.Budget)
		}
	}
}

// TestEngineMemGovernor: concurrent queries draw grants from one engine
// pool; every query completes correctly (spilling under its grant), and no
// query's tracked peak exceeds the largest possible grant (half the pool)
// plus transient slack.
func TestEngineMemGovernor(t *testing.T) {
	cat := GenerateTPCH(DataConfig{ScaleFactor: 0.01})
	base, err := NewEngine(cat).Query(context.Background(), spillSQL, Options{Parallelism: 4})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	want := canon(base.Rows)
	pool := base.PeakMemBytes // every grant is below one query's appetite

	eng := NewEngineWithConfig(cat, EngineConfig{
		MemBudget:            pool,
		MaxConcurrentQueries: 3,
	})
	const queries = 4
	results := make([]*Result, queries)
	errs := make([]error, queries)
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = eng.Query(context.Background(), spillSQL, Options{Parallelism: 4})
		}(i)
	}
	wg.Wait()

	var spills int64
	for i := 0; i < queries; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		got := canon(results[i].Rows)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d rows, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d: row %d = %q, want %q", i, j, got[j], want[j])
			}
		}
		maxGrant := pool / 2
		slack := maxGrant/2 + 256<<10
		if p := results[i].PeakMemBytes; p > maxGrant+slack {
			t.Fatalf("query %d: peak %d exceeds max grant %d + slack %d", i, p, maxGrant, slack)
		}
		spills += results[i].SpillEvents
	}
	if spills == 0 {
		t.Fatalf("no query spilled under a pool of %d B (single-query peak %d B)", pool, pool)
	}
}

// TestMemGovernorGrants exercises the grant arithmetic and blocking
// behavior directly: halving grants, the floor, dry-pool blocking with
// context cancellation, and release-driven wakeup.
func TestMemGovernorGrants(t *testing.T) {
	g := newMemGovernor(1600)
	ctx := context.Background()

	g1, err := g.acquire(ctx)
	if err != nil || g1 != 800 {
		t.Fatalf("first grant = %d, %v; want 800", g1, err)
	}
	g2, err := g.acquire(ctx)
	if err != nil || g2 != 1600/3 {
		t.Fatalf("second grant = %d, %v; want %d", g2, err, 1600/3)
	}
	// avail = 1600-800-533 = 267 >= floor(100); desired 400 capped to 267.
	g3, err := g.acquire(ctx)
	if err != nil || g3 != 1600-g1-g2 {
		t.Fatalf("third grant = %d, %v; want %d", g3, err, 1600-g1-g2)
	}

	// Pool is dry: acquire must block until a release, honoring the context.
	shortCtx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := g.acquire(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("dry-pool acquire: err = %v, want deadline exceeded", err)
	}

	done := make(chan int64, 1)
	go func() {
		grant, err := g.acquire(ctx)
		if err != nil {
			t.Errorf("post-release acquire: %v", err)
		}
		done <- grant
	}()
	g.release(g1)
	select {
	case grant := <-done:
		if grant <= 0 {
			t.Fatalf("post-release grant = %d", grant)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("release did not wake the waiter")
	}
}

// TestPlanCacheInvalidatedByCatalogChange: replacing a table via
// Catalog.Add must retire plans compiled against the old contents — the
// next ad-hoc query re-binds and sees the new rows instead of a stale
// snapshot.
func TestPlanCacheInvalidatedByCatalogChange(t *testing.T) {
	sch := types.NewSchema(types.Column{Table: "t", Name: "a", Kind: types.KindInt})
	mk := func(vals ...int64) *catalog.Table {
		rows := make([]types.Tuple, len(vals))
		for i, v := range vals {
			rows[i] = types.Tuple{types.Int(v)}
		}
		return &catalog.Table{Name: "t", Schema: sch, Rows: rows}
	}
	cat := catalog.New()
	cat.Add(mk(1, 2, 3))
	eng := NewEngine(cat)

	const q = `SELECT a FROM t`
	res, err := eng.Query(context.Background(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("before replace: %d rows, want 3", len(res.Rows))
	}
	// Warm cache: a second identical query must hit.
	if _, err := eng.Query(context.Background(), q, Options{}); err != nil {
		t.Fatal(err)
	}
	if h := eng.PlanCacheStats().Hits; h != 1 {
		t.Fatalf("cache hits before replace = %d, want 1", h)
	}

	cat.Add(mk(4, 5, 6, 7))
	res, err = eng.Query(context.Background(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("after replace: %d rows, want 4 (stale plan served)", len(res.Rows))
	}
	if h := eng.PlanCacheStats().Hits; h != 1 {
		t.Fatalf("cache hits after replace = %d, want 1 (key must include catalog version)", h)
	}
}

package sip

import (
	"context"
	"sync"
)

// memGovernor arbitrates one engine-wide memory pool across concurrent
// queries. Each admitted query receives a byte grant that becomes (or caps)
// its exec.Context.MemBudget, so heavy queries spill against their share
// instead of racing each other to an OOM; the pool composes with the
// MaxConcurrentQueries admission semaphore, which bounds how many grants
// are outstanding at once.
//
// The policy is deliberately simple and starvation-free: a new query gets
// total/(admitted+2) — half the pool when it is alone, leaving headroom for
// followers — bounded below by total/16 (grants smaller than that thrash
// the spill merge) and above by what is actually free. When the free pool
// drops under the floor, acquire blocks until a running query releases its
// grant or the caller's context fires.
type memGovernor struct {
	total int64

	mu       sync.Mutex
	avail    int64
	admitted int
	wait     chan struct{} // closed+replaced on every release (broadcast)
}

func newMemGovernor(total int64) *memGovernor {
	return &memGovernor{total: total, avail: total, wait: make(chan struct{})}
}

// floor is the smallest grant the governor will hand out.
func (g *memGovernor) floor() int64 {
	f := g.total / 16
	if f < 1 {
		f = 1
	}
	return f
}

// acquire blocks until a grant is available, returning the granted bytes.
// The caller must release(grant) exactly once when the query finishes.
func (g *memGovernor) acquire(ctx context.Context) (int64, error) {
	g.mu.Lock()
	for {
		if floor := g.floor(); g.avail >= floor {
			grant := g.total / int64(g.admitted+2)
			if grant < floor {
				grant = floor
			}
			if grant > g.avail {
				grant = g.avail
			}
			g.avail -= grant
			g.admitted++
			g.mu.Unlock()
			return grant, nil
		}
		w := g.wait
		g.mu.Unlock()
		select {
		case <-w:
		case <-ctx.Done():
			return 0, context.Cause(ctx)
		}
		g.mu.Lock()
	}
}

// stats snapshots the pool for the engine's GovernorStats accessor.
func (g *memGovernor) stats() GovernorStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GovernorStats{TotalBytes: g.total, AvailableBytes: g.avail, Admitted: g.admitted}
}

// release returns a grant to the pool and wakes every waiter.
func (g *memGovernor) release(grant int64) {
	g.mu.Lock()
	g.avail += grant
	g.admitted--
	close(g.wait)
	g.wait = make(chan struct{})
	g.mu.Unlock()
}

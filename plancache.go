package sip

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// PlanCacheStats is a snapshot of the engine's plan-cache counters.
type PlanCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
}

// PlanCacheStats returns the current plan-cache counters; all zeros when
// caching is disabled.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	if e.cache == nil {
		return PlanCacheStats{}
	}
	return e.cache.stats()
}

// planCache is a bounded LRU of compiled plan templates keyed by SQL text
// plus the plan-affecting option fingerprint. Cached values are immutable
// templates (optimizer.Result plus metadata) instantiated per execution, so
// sharing one entry across concurrent queries is safe.
type planCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key  string
	plan *enginePlan
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

func (c *planCache) get(key string) (*enginePlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).plan, true
}

func (c *planCache) put(key string, p *enginePlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok { // lost a build race: keep the incumbent
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, plan: p})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.Lock()
	entries := c.order.Len()
	c.mu.Unlock()
	return PlanCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
	}
}

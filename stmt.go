package sip

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/magic"
	"repro/internal/network"
	"repro/internal/optimizer"
	"repro/internal/plan"
)

// enginePlan is a compiled, reusable plan template: the output of
// parse/bind/placement/rewrite/optimize for one (SQL, plan-affecting
// options) pair. It is immutable; every execution instantiates a fresh copy
// of the operator tree and injection points from it.
type enginePlan struct {
	built     *optimizer.Result
	schema    *Schema
	numParams int
	topo      *network.Topology // non-nil when the plan ships remote scans
}

// buildPlan runs the full front end: parse, bind, placement tagging, magic
// rewrite, and physical optimization.
func (e *Engine) buildPlan(sql string, opts Options) (*enginePlan, error) {
	blk, err := plan.BindSQL(e.cat, sql)
	if err != nil {
		return nil, err
	}
	if err := e.applyPlacement(blk, opts); err != nil {
		return nil, err
	}
	schema := blk.OutputSchema()
	numParams := blk.NumParams
	if opts.Strategy == Magic {
		blk = magic.Rewrite(blk)
	}
	var topo *network.Topology
	if len(opts.RemoteTables) > 0 {
		topo = opts.topology()
	}
	built, err := optimizer.Build(optimizer.Config{
		Topology:        topo,
		Delay:           opts.delay(),
		ScanBytesPerSec: opts.SourceBytesPerSec,
	}, blk)
	if err != nil {
		return nil, err
	}
	return &enginePlan{built: built, schema: schema, numParams: numParams, topo: topo}, nil
}

// plan returns the compiled template for (sql, opts), consulting the
// bounded LRU plan cache so repeated ad-hoc queries skip
// parse/bind/optimize entirely.
func (e *Engine) plan(sql string, opts Options) (*enginePlan, error) {
	if e.cache == nil {
		return e.buildPlan(sql, opts)
	}
	// A remote query with a nil Topology gets the documented default — a
	// fresh topology per call, so each query's simulated link is
	// independent. Caching the plan would pin one default Link (whose
	// busy-until state serializes transfers) across unrelated queries,
	// skewing the modeled network timings; build per call instead, as the
	// pre-cache engine did. Explicitly-shared topologies cache fine: the
	// caller opted into sharing that network.
	if len(opts.RemoteTables) > 0 && opts.Topology == nil {
		return e.buildPlan(sql, opts)
	}
	key := planKey(sql, opts, e.cat.Version())
	if p, ok := e.cache.get(key); ok {
		return p, nil
	}
	p, err := e.buildPlan(sql, opts)
	if err != nil {
		return nil, err
	}
	e.cache.put(key, p)
	return p, nil
}

// planKey fingerprints the option fields that change the compiled plan
// (placement, rewrite, pacing) plus the scheduler knobs (Scheduler and the
// Parallelism input to the adaptive-P clamp), so cached plans never cross
// scheduler modes, and the filter variant, so cached plans never mix Bloom
// geometries; the remaining runtime-only knobs (FPR, summary kind, pipeline
// depth, cost-model constants, memory budget) are deliberately excluded so
// they share one cached plan. The catalog version is part of the key: a
// compiled plan snapshots table row slices and statistics at build time, so
// replacing a table via Catalog.Add must retire every plan built against
// the old contents instead of serving stale rows (the superseded entries
// age out of the LRU).
func planKey(sql string, opts Options, catVersion int64) string {
	var sb strings.Builder
	sb.WriteString(sql)
	sb.WriteByte(0)
	if opts.Strategy == Magic {
		sb.WriteString("magic")
	}
	sb.WriteByte(0)
	if len(opts.DelayedTables) > 0 {
		names := make([]string, len(opts.DelayedTables))
		for i, t := range opts.DelayedTables {
			names[i] = strings.ToLower(t)
		}
		sort.Strings(names)
		sb.WriteString(strings.Join(names, ","))
		d := opts.delay()
		fmt.Fprintf(&sb, "@%v/%d/%v/%d/%v", d.Initial, d.EveryN, d.Pause, d.BurstEveryN, d.BurstPause)
		if d.Fault != nil {
			// The fault profile is baked into the compiled scans; its full
			// value keys the plan so different chaos profiles never share.
			fmt.Fprintf(&sb, "!%+v", *d.Fault)
		}
	}
	sb.WriteByte(0)
	if len(opts.RemoteTables) > 0 {
		pairs := make([]string, 0, len(opts.RemoteTables))
		for t, site := range opts.RemoteTables {
			pairs = append(pairs, fmt.Sprintf("%s=%d", strings.ToLower(t), site))
		}
		sort.Strings(pairs)
		sb.WriteString(strings.Join(pairs, ","))
		// Topology identity: links are modeled per topology instance, so an
		// explicit topology keys by pointer (nil-Topology remote plans never
		// reach the cache; see plan).
		fmt.Fprintf(&sb, "@%p", opts.Topology)
	}
	sb.WriteByte(0)
	fmt.Fprintf(&sb, "%d", opts.SourceBytesPerSec)
	sb.WriteByte(0)
	fmt.Fprintf(&sb, "%s/%d/v%d/cat%d", opts.Scheduler, opts.Parallelism, opts.Variant, catVersion)
	return sb.String()
}

// applyPlacement tags relations with delay and site assignments,
// recursively through nested blocks, validating every referenced table
// name against the catalog so a typo surfaces as an error instead of a
// silently ignored option.
func (e *Engine) applyPlacement(b *plan.Block, opts Options) error {
	delayed := map[string]bool{}
	for _, t := range opts.DelayedTables {
		name := strings.ToLower(t)
		if !e.cat.Has(name) {
			return fmt.Errorf("sip: DelayedTables: unknown table %q", t)
		}
		delayed[name] = true
	}
	remote := map[string]int{}
	for t, site := range opts.RemoteTables {
		name := strings.ToLower(t)
		if !e.cat.Has(name) {
			return fmt.Errorf("sip: RemoteTables: unknown table %q", t)
		}
		if site <= 0 {
			return fmt.Errorf("sip: RemoteTables: table %q assigned to invalid site %d (sites are > 0; 0 is the master)", t, site)
		}
		remote[name] = site
	}
	var walk func(b *plan.Block)
	walk = func(b *plan.Block) {
		for _, rel := range b.Rels {
			if rel.Sub != nil {
				walk(rel.Sub)
				continue
			}
			name := strings.ToLower(rel.Table.Name)
			if delayed[name] {
				rel.Delayed = true
			}
			if site, ok := remote[name]; ok {
				rel.Site = site
			}
		}
	}
	walk(b)
	return nil
}

// Explain returns a textual description of the bound block structure.
func (e *Engine) Explain(sql string) (string, error) {
	blk, err := plan.BindSQL(e.cat, sql)
	if err != nil {
		return "", err
	}
	return blk.String(), nil
}

// Stmt is a prepared statement: the SQL was parsed, bound, placed, and
// optimized exactly once at Prepare time. Each Query/QueryStream
// instantiates a fresh copy of the compiled plan with the `?` placeholder
// arguments substituted as typed constants, so per-execution cost is the
// execution itself. A Stmt is safe for concurrent use.
type Stmt struct {
	eng  *Engine
	sql  string
	opts Options
	plan *enginePlan
}

// Prepare compiles sql once for repeated execution under default Options.
func (e *Engine) Prepare(ctx context.Context, sql string) (*Stmt, error) {
	return e.PrepareWithOptions(ctx, sql, Options{})
}

// PrepareWithOptions compiles sql once under the given options. The
// plan-shaping options (Strategy, placement, pacing) are fixed at prepare
// time; runtime options (FPR, Summary, Parallelism, PipelineDepth, Cost)
// are re-read from the captured Options at every execution.
//
// A statement prepared with RemoteTables captures its network model once:
// with a nil Topology the default topology is instantiated at prepare
// time and its links (including their busy-until transfer state) are
// shared by all of the statement's executions — concurrent executions
// contend on the same simulated wire. Per-call independent links need
// per-call Query/QueryStream, which build a fresh default topology each
// time.
func (e *Engine) PrepareWithOptions(ctx context.Context, sql string, opts Options) (*Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Consult the plan cache: templates are immutable, so N connections
	// preparing the same statement share one parse/bind/optimize pass.
	p, err := e.plan(sql, opts)
	if err != nil {
		return nil, err
	}
	return &Stmt{eng: e, sql: sql, opts: opts, plan: p}, nil
}

// SQL returns the statement's source text.
func (s *Stmt) SQL() string { return s.sql }

// NumParams returns the number of `?` placeholders.
func (s *Stmt) NumParams() int { return s.plan.numParams }

// Schema returns the statement's result schema.
func (s *Stmt) Schema() *Schema { return s.plan.schema }

// Query executes the prepared plan with the given arguments and collects
// the full result (a thin wrapper draining QueryStream).
func (s *Stmt) Query(ctx context.Context, args ...Value) (*Result, error) {
	rows, err := s.QueryStream(ctx, args...)
	if err != nil {
		return nil, err
	}
	return rows.drain()
}

// QueryStream executes the prepared plan with the given arguments and
// returns a streaming cursor. The number of arguments must match
// NumParams.
func (s *Stmt) QueryStream(ctx context.Context, args ...Value) (*Rows, error) {
	if len(args) != s.plan.numParams {
		return nil, fmt.Errorf("sip: statement has %d parameter(s), got %d argument(s)", s.plan.numParams, len(args))
	}
	return s.eng.start(ctx, s.sql, s.plan, s.opts, args)
}

// Close releases the statement. It is currently a no-op (plans are
// garbage-collected) and exists for database/sql-style symmetry.
func (s *Stmt) Close() error { return nil }

// Package sip is a push-style query engine with Sideways Information
// Passing, reproducing "Sideways Information Passing for Push-Style Query
// Processing" (Ives & Taylor, ICDE 2008).
//
// The engine executes SQL over in-memory relations using multithreaded
// pipelined hash joins and hash aggregation (the Tukwila execution model),
// and supports four execution strategies:
//
//   - Baseline: plain push execution, no information passing.
//   - Magic: magic-sets rewriting (the paper's strongest prior technique).
//   - FeedForward: greedy adaptive information passing (§IV-A).
//   - CostBased: cost-model-driven adaptive information passing (§IV-B),
//     including distributed filter shipping.
//
// Every execution entry point takes a context.Context: cancelling it (or
// letting its deadline expire) drains every operator goroutine promptly and
// surfaces context.Canceled / context.DeadlineExceeded from the query.
//
// Sources can be unreliable. Options.Faults injects deterministic, seeded
// failures (transient errors, drops, stalls, mid-flight cuts) into remote
// links and delayed scans; every remote interaction then runs under
// Options.Retry — bounded retries with capped exponential backoff and
// jitter, per-attempt timeouts, and a per-site circuit breaker — without
// changing the answer: a query that completes under faults returns exactly
// the fault-free result. When a source stays dead through the whole retry
// budget, Options.OnSourceFailure picks the contract: FailOnSourceError
// (default) fails the query with a typed *SourceError naming the table,
// site, attempts, and cause; PartialOnSourceError completes the query
// without the dead source's tuples, with Result.IncompleteTables (and
// Rows.IncompleteTables, mid-stream) stating exactly what is missing —
// degraded results are annotated, never silently wrong. Recovery work is
// accounted in Result.Retries / WastedBytes / BreakerTransitions.
//
// Memory is governed, not hoped for. Options.MemBudget caps one query's
// tracked operator state (join tables, aggregation groups, distinct sets);
// under pressure the partitioned operators evict whole hash buckets to
// CRC-framed disk runs and merge them back after input-done, so a heavy
// query degrades to out-of-core execution with the same answer instead of
// OOMing — Result.PeakMemBytes / SpillBytes / SpillEvents report the
// high-water mark and spill activity. EngineConfig.MemBudget extends the
// same contract engine-wide: concurrent queries draw byte grants from one
// shared pool (waiting in admission when it runs dry), composing with
// MaxConcurrentQueries. A budget too small for even the maximum
// spill-merge fan-out fails with a typed *BudgetError; a panic inside an
// operator goroutine is contained to its query and surfaces as a typed
// *PanicError.
//
// Quick start — blocking execution:
//
//	cat := sip.GenerateTPCH(sip.DataConfig{ScaleFactor: 0.01})
//	eng := sip.NewEngine(cat)
//	res, err := eng.Query(ctx, `SELECT n_name, count(*) FROM supplier, nation
//	    WHERE s_nationkey = n_nationkey GROUP BY n_name`,
//	    sip.Options{Strategy: sip.FeedForward})
//
// Streaming — rows are delivered batch-at-a-time from the root operator
// with backpressure (a slow consumer stalls the pipeline instead of
// materializing the result), and Close cancels the query and reclaims
// every goroutine:
//
//	rows, err := eng.QueryStream(ctx, sql, sip.Options{})
//	defer rows.Close()
//	for rows.Next() {
//	    use(rows.Row())
//	}
//	err = rows.Err()
//
// Prepared statements — parse/bind/optimize once, execute many times with
// `?` placeholder arguments; the ad-hoc Query path gets the same benefit
// automatically from the engine's bounded plan cache:
//
//	stmt, err := eng.Prepare(ctx, `SELECT n_name FROM nation WHERE n_nationkey = ?`)
//	res, err := stmt.Query(ctx, sip.Int(7))
//
// Two execution schedulers are available (Options.Scheduler). The default
// "chan" engine runs one goroutine per operator per partition, glued by
// buffered channels. The "morsel" engine runs the same plan on a per-query
// work-stealing worker pool (internal/sched): scans range-split into
// morsels so one big table uses every core, stateless operators fuse into
// the producing task, and partitioned operators hand off through actor
// inboxes instead of channels. Both produce identical results; the pool
// width follows Options.Parallelism (GOMAXPROCS by default), clamped by
// the plan's cardinality estimate and degraded under concurrent-query
// load instead of oversubscribing goroutines.
package sip

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/network"
	"repro/internal/stats"
	"repro/internal/tpch"
	"repro/internal/types"
)

// Strategy selects the execution technique.
type Strategy int

// Execution strategies.
const (
	Baseline Strategy = iota
	Magic
	FeedForward
	CostBased
)

var strategyNames = map[Strategy]string{
	Baseline: "Baseline", Magic: "Magic",
	FeedForward: "Feed-forward", CostBased: "Cost-based",
}

// String returns the display name used in the paper's figures.
func (s Strategy) String() string { return strategyNames[s] }

// AllStrategies lists every strategy in figure order.
func AllStrategies() []Strategy { return []Strategy{Baseline, Magic, FeedForward, CostBased} }

// Row is one result tuple.
type Row = types.Tuple

// Value is one SQL value.
type Value = types.Value

// Int builds an integer Value (prepared-statement arguments).
func Int(v int64) Value { return types.Int(v) }

// Float builds a float Value.
func Float(v float64) Value { return types.Float(v) }

// Str builds a string Value.
func Str(s string) Value { return types.Str(s) }

// Date builds a date Value from 'YYYY-MM-DD'.
func Date(s string) (Value, error) { return types.DateFromString(s) }

// Schema describes result columns.
type Schema = types.Schema

// Catalog holds the tables a query runs against.
type Catalog = catalog.Catalog

// DataConfig configures the built-in TPC-H generator.
type DataConfig = tpch.Config

// Topology models the network of a distributed run.
type Topology = network.Topology

// Link models one network connection.
type Link = network.Link

// DelayConfig reproduces the paper's slow-source model, extended with
// bursty pauses and fault injection for chaos testing.
type DelayConfig = exec.DelayConfig

// FaultProfile parameterizes deterministic fault injection: per-interaction
// drop / stall / transient-error / cut-after-N-bytes probabilities drawn
// from a seed, so chaos runs reproduce exactly.
type FaultProfile = network.FaultProfile

// RetryPolicy bounds the recovery machinery for remote and flaky sources:
// bounded retries, capped exponential backoff with jitter, per-attempt
// timeouts, and per-site circuit breakers. Zero fields mean defaults.
type RetryPolicy = network.RetryPolicy

// FailureMode selects what a query does when a source stays dead after
// recovery is exhausted.
type FailureMode = exec.FailureMode

// Failure modes for Options.OnSourceFailure.
const (
	// FailOnSourceError (default): the query fails with a *SourceError.
	FailOnSourceError = exec.FailOnSourceError
	// PartialOnSourceError: the query completes without the dead source's
	// remaining tuples; Result.IncompleteTables names what is missing.
	PartialOnSourceError = exec.PartialOnSourceError
)

// SourceError is the typed failure of a source that stayed dead through the
// recovery policy: it names the table, its site, how many attempts were
// made, and the final cause. Queries running with FailOnSourceError surface
// it from Query / Rows.Err (unwrap with errors.As).
type SourceError = exec.SourceError

// BudgetError is the typed failure of a query whose memory budget
// (Options.MemBudget or the engine pool's grant) is too small for even the
// maximum out-of-core spill-merge fan-out: it names the operator, the
// budget, and a lower bound on the bytes that would have been needed.
// Unwrap with errors.As.
type BudgetError = exec.BudgetError

// PanicError is the typed failure of a query one of whose operator
// goroutines panicked. The panic is contained to that query — the process
// and every other in-flight query keep running — and the recovered value
// plus the goroutine stack are preserved here. Unwrap with errors.As.
type PanicError = exec.PanicError

// SummaryKind selects the AIP-set representation (Bloom or hash set).
type SummaryKind = core.SummaryKind

// FilterVariant selects the Bloom-filter memory layout.
type FilterVariant = core.FilterVariant

// Bloom-filter layouts: cache-line-blocked (default; one line touched per
// probe, batch kernels) or the classic flat bit array (kept as the
// differential and memory baseline).
const (
	BlockedBloom = core.BlockedBloom
	FlatBloom    = core.FlatBloom
)

// CostParams parameterize the Cost-Based AIP manager's model.
type CostParams = core.CostParams

// DefaultCostParams returns the cost-model calibration the experiments use.
func DefaultCostParams() CostParams { return core.DefaultCostParams() }

// AIP-set representations.
const (
	SummaryBloom   = core.SummaryBloom
	SummaryHashSet = core.SummaryHashSet
)

// Mbps converts megabits per second to bytes per second.
func Mbps(m float64) int64 { return network.Mbps(m) }

// NewTopology creates a network topology whose site pairs default to the
// given link.
func NewTopology(def *Link) *Topology { return network.NewTopology(def) }

// GenerateTPCH builds the TPC-H-shaped catalog (see internal/tpch).
func GenerateTPCH(cfg DataConfig) *Catalog { return tpch.Generate(cfg) }

// Options configure one query execution.
type Options struct {
	// Strategy selects the execution technique; zero value is Baseline.
	Strategy Strategy

	// FPR is the Bloom-filter false-positive target (default 5%, the
	// paper's setting).
	FPR float64

	// Summary selects Bloom filters (default) or exact hash sets.
	Summary SummaryKind

	// Variant selects the Bloom-filter layout (blocked by default; ignored
	// for hash-set summaries).
	Variant FilterVariant

	// DelayedTables names base tables whose scans are delayed per Delay
	// (the paper delays PARTSUPP).
	DelayedTables []string
	// Delay is the delay model for DelayedTables; when nil the paper's
	// §VI-B parameters are used (100 ms initial, 5 ms per 1000 tuples).
	Delay *DelayConfig

	// RemoteTables maps base-table names to a site number (>0); their
	// scans execute remotely and ship results over the Topology.
	RemoteTables map[string]int
	// Topology models the links; required when RemoteTables is non-empty.
	// The default is a single 100 Mbps, 1 ms link (the paper's §VI-C
	// Ethernet).
	Topology *Topology

	// Cost overrides the Cost-Based manager's model constants.
	Cost *core.CostParams

	// SourceBytesPerSec paces every base-table scan like a disk or source
	// stream, staggering subexpression completion the way the paper's
	// disk-streamed experiments did. Zero leaves scans unpaced.
	SourceBytesPerSec int64

	// Faults injects deterministic failures into the unreliable parts of
	// the query: the default topology's links (when Topology is nil) and
	// the scans of DelayedTables (unless Delay.Fault is already set). An
	// explicitly provided Topology keeps its own per-link fault profiles.
	// nil runs reliably.
	Faults *FaultProfile

	// Retry bounds the recovery policy applied to every remote or flaky
	// interaction: bounded retries with capped exponential backoff and
	// jitter, per-attempt timeouts, and per-site circuit breakers. Zero
	// fields mean the defaults (3 retries, 2s attempt timeout, 10ms–500ms
	// backoff ±20%, breaker at 5 consecutive failures with 500ms cooldown).
	Retry RetryPolicy

	// OnSourceFailure selects fail-fast (FailOnSourceError, the default:
	// the query fails with a typed *SourceError) or graceful degradation
	// (PartialOnSourceError: the query completes without the dead source's
	// tuples and Result.IncompleteTables says what is missing).
	OnSourceFailure FailureMode

	// Parallelism is the radix-partition fan-out of the stateful operators
	// (hash join, aggregation, distinct) and, under the morsel scheduler,
	// the worker-pool width: how many cores one query can saturate. Zero
	// means runtime.GOMAXPROCS(0); the executor rounds it down to a power
	// of two, caps it at 64, and clamps it by the optimizer's cardinality
	// estimate so tiny inputs skip the fan-out overhead. The morsel pool
	// additionally degrades under MaxConcurrentQueries admission load
	// (width divided by the number of running queries, floored at one)
	// instead of oversubscribing goroutines. One reproduces the
	// single-owner data path exactly.
	Parallelism int

	// PipelineDepth is the per-edge channel buffer in batches (pipeline
	// edges and partition scatter channels). Zero means the executor's
	// default (exec.DefaultPipelineDepth); deeper buffers absorb rate
	// jitter between producers and consumers at the cost of more
	// in-flight batches. Chan scheduler only: the morsel engine has no
	// internal channels and uses it just for the root output edge.
	PipelineDepth int

	// Scheduler selects the execution engine: SchedulerChan (default, one
	// goroutine per operator per partition) or SchedulerMorsel (work-
	// stealing worker pool with range-split parallel scans). Results are
	// identical; plans the morsel compiler cannot run fall back to chan.
	Scheduler string

	// MemBudget caps this query's tracked operator state (join tables,
	// aggregation groups, distinct sets) in bytes. Under pressure the
	// stateful operators evict whole hash buckets to disk runs and merge
	// them back after input-done, so the query degrades to out-of-core
	// execution instead of growing without bound; a budget too small for
	// even the maximum spill-merge fan-out fails with a typed *BudgetError.
	// Zero means unbounded — unless the engine runs with
	// EngineConfig.MemBudget, in which case the engine's per-query grant
	// applies (and a non-zero Options.MemBudget is capped by that grant).
	MemBudget int64
}

// Scheduler values for Options.Scheduler.
const (
	SchedulerChan   = exec.SchedulerChan
	SchedulerMorsel = exec.SchedulerMorsel
)

func (o Options) delay() *exec.DelayConfig {
	d := o.Delay
	if d == nil {
		d = &exec.DelayConfig{Initial: 100 * time.Millisecond, EveryN: 1000, Pause: 5 * time.Millisecond}
	}
	if o.Faults != nil && d.Fault == nil {
		dd := *d
		dd.Fault = o.Faults
		return &dd
	}
	return d
}

func (o Options) topology() *network.Topology {
	if o.Topology != nil {
		return o.Topology
	}
	return network.NewTopology(&network.Link{
		BytesPerSec: network.Mbps(100),
		Latency:     time.Millisecond,
		Faults:      o.Faults,
	})
}

// Result is the outcome of one query execution.
type Result struct {
	Rows   []Row
	Schema *Schema

	// Duration is wall-clock execution time (excluding parse/optimize).
	Duration time.Duration
	// PeakStateBytes is the intermediate-state high-water mark, the
	// quantity the paper's space-usage figures report.
	PeakStateBytes int64
	// FiltersCreated and FiltersInjected count AIP activity.
	FiltersCreated  int64
	FiltersInjected int64
	// TuplesPruned counts tuples dropped by injected filters.
	TuplesPruned int64
	// TuplesProcessed sums tuples received across all operators: the
	// engine's total processing volume. It shifts with plan shape (more
	// operators, more receipts), so it is not comparable across plans —
	// use TuplesScanned for a volume comparable across strategies.
	TuplesProcessed int64
	// TuplesScanned sums tuples emitted by base-table scans: the query's
	// input volume, comparable across plan shapes and with the join
	// microbench's input-tuples/sec.
	TuplesScanned int64
	// NetworkBytes counts simulated network traffic.
	NetworkBytes int64

	// FilterBytes is the total memory allocated to AIP summaries (published
	// filters plus working-set growth); PeakFilterWorkingBytes is the
	// high-water mark of in-progress (not yet published) working sets summed
	// across operators — the quantity the striped per-slot working sets are
	// designed to shrink.
	FilterBytes            int64
	PeakFilterWorkingBytes int64

	// Retries counts remote-interaction re-attempts the recovery layer
	// made; WastedBytes is the simulated bandwidth consumed by attempts
	// that failed; BreakerTransitions counts circuit-breaker state changes
	// across all sites. All zero for a fault-free run.
	Retries            int64
	WastedBytes        int64
	BreakerTransitions int64

	// PeakMemBytes is the high-water mark of the memory accountant's
	// tracked operator state — the quantity a MemBudget caps. SpillBytes
	// and SpillEvents count out-of-core activity: bytes written to spill
	// runs and whole-bucket evictions. All zero for an unbounded in-memory
	// run.
	PeakMemBytes int64
	SpillBytes   int64
	SpillEvents  int64

	// IncompleteTables lists the sources this result is missing (only under
	// OnSourceFailure: PartialOnSourceError): one SourceError per dead
	// table, sorted by table name. Empty means the result is complete.
	IncompleteTables []*SourceError

	// Stats exposes the full per-operator registry. It is nil when the
	// engine runs with EngineConfig.PooledStats (the registry is recycled
	// when the cursor finishes); the scalar counters above are always
	// populated.
	Stats *stats.Registry
}

// Complete reports whether the result covers every source (no tables were
// abandoned under PartialOnSourceError).
func (r *Result) Complete() bool { return len(r.IncompleteTables) == 0 }

// DefaultPlanCacheSize is the default capacity (in plans) of the engine's
// LRU plan cache.
const DefaultPlanCacheSize = 64

// EngineConfig tunes engine-wide behavior shared by all queries.
type EngineConfig struct {
	// PlanCacheSize bounds the engine's LRU plan cache (in cached plans).
	// Zero means DefaultPlanCacheSize; negative disables caching, so every
	// ad-hoc Query re-parses, re-binds, and re-optimizes.
	//
	// A cached plan snapshots the catalog state (table row slices,
	// statistics) at first use, exactly like a prepared statement snapshots
	// it at Prepare. Cache keys include the catalog version, which
	// Catalog.Add bumps on every table registration or replacement, so an
	// ad-hoc Query after a catalog change always recompiles against the new
	// contents; already-prepared statements keep their snapshot. Mutating a
	// *Table in place bypasses the version — replace tables through Add.
	PlanCacheSize int

	// MaxConcurrentQueries caps the number of queries executing at once;
	// further callers block in admission until a slot frees (or their
	// context is cancelled). Zero means unlimited.
	MaxConcurrentQueries int

	// MemBudget is an engine-wide memory pool (in bytes) shared by all
	// concurrently executing queries. Each query is granted a slice of the
	// pool at admission — half of it when running alone, shrinking as more
	// queries are admitted, never below 1/16th — and executes under that
	// grant exactly as if Options.MemBudget were set to it (spilling to
	// disk under pressure; see Options.MemBudget). When the free pool runs
	// dry, further queries wait in admission until a grant is released.
	// Composes with MaxConcurrentQueries, which bounds how many grants are
	// outstanding. Zero means no engine-wide governance: only per-query
	// Options.MemBudget applies.
	MemBudget int64

	// PooledStats recycles the per-query stats registry (and its
	// per-operator counter blocks) through a pool instead of allocating
	// them per execution, removing a fixed per-query cost on hot serving
	// paths. In pooled mode Result.Stats is nil — the registry is reclaimed
	// once the cursor finishes, after every operator goroutine has exited —
	// while the scalar Result counters are still populated.
	PooledStats bool

	// SlowQueryThreshold turns on the engine's slow-query log: every
	// execution (ad-hoc, streamed, or prepared) whose wall time meets or
	// exceeds the threshold is recorded — SQL text, duration, completion
	// time — in a bounded ring readable through Engine.SlowQueries, with a
	// monotonic total in Engine.SlowQueryCount. The serving tier surfaces
	// both on its /stats endpoint. Zero disables the log.
	SlowQueryThreshold time.Duration
}

// SlowQuery is one slow-query log entry: an execution whose wall time met
// EngineConfig.SlowQueryThreshold.
type SlowQuery struct {
	SQL      string
	Duration time.Duration
	At       time.Time // completion time
}

// slowLogSize bounds the slow-query ring; older entries are overwritten.
const slowLogSize = 64

// slowLog is the engine's bounded slow-query ring.
type slowLog struct {
	mu      sync.Mutex
	entries [slowLogSize]SlowQuery
	n       int   // valid entries (≤ slowLogSize)
	next    int   // ring write cursor
	total   int64 // all-time slow executions
}

func (l *slowLog) record(sql string, d time.Duration, at time.Time) {
	l.mu.Lock()
	l.entries[l.next] = SlowQuery{SQL: sql, Duration: d, At: at}
	l.next = (l.next + 1) % slowLogSize
	if l.n < slowLogSize {
		l.n++
	}
	l.total++
	l.mu.Unlock()
}

// snapshot returns the retained entries, most recent first.
func (l *slowLog) snapshot() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, l.n)
	for i := 1; i <= l.n; i++ {
		out = append(out, l.entries[(l.next-i+slowLogSize)%slowLogSize])
	}
	return out
}

// Engine executes queries against a catalog. It is safe for concurrent use:
// many goroutines may Query/QueryStream/Prepare on one engine at once, with
// admission bounded by EngineConfig.MaxConcurrentQueries.
type Engine struct {
	cat     *catalog.Catalog
	cache   *planCache    // nil when disabled
	sem     chan struct{} // nil when unlimited
	gov     *memGovernor  // nil when no engine-wide memory pool
	pooled  bool          // recycle per-query stats registries
	running atomic.Int64  // queries currently executing (adaptive parallelism)

	slowThresh time.Duration // 0 = slow-query log disabled
	slow       slowLog
}

// NewEngine creates an engine over the catalog with the default config.
func NewEngine(cat *Catalog) *Engine { return NewEngineWithConfig(cat, EngineConfig{}) }

// NewEngineWithConfig creates an engine with explicit limits.
func NewEngineWithConfig(cat *Catalog, cfg EngineConfig) *Engine {
	e := &Engine{cat: cat, pooled: cfg.PooledStats}
	size := cfg.PlanCacheSize
	if size == 0 {
		size = DefaultPlanCacheSize
	}
	if size > 0 {
		e.cache = newPlanCache(size)
	}
	if cfg.MaxConcurrentQueries > 0 {
		e.sem = make(chan struct{}, cfg.MaxConcurrentQueries)
	}
	if cfg.MemBudget > 0 {
		e.gov = newMemGovernor(cfg.MemBudget)
	}
	e.slowThresh = cfg.SlowQueryThreshold
	return e
}

// SlowQueries returns the retained slow-query log entries, most recent
// first (empty when EngineConfig.SlowQueryThreshold is zero or nothing has
// crossed it).
func (e *Engine) SlowQueries() []SlowQuery { return e.slow.snapshot() }

// SlowQueryCount returns the all-time number of executions that crossed
// EngineConfig.SlowQueryThreshold, including entries the bounded log has
// since overwritten.
func (e *Engine) SlowQueryCount() int64 {
	e.slow.mu.Lock()
	defer e.slow.mu.Unlock()
	return e.slow.total
}

// RunningQueries reports how many queries are executing right now (admitted
// and not yet finished) — the same load signal the morsel scheduler's
// adaptive parallelism divides by.
func (e *Engine) RunningQueries() int { return int(e.running.Load()) }

// GovernorStats is a snapshot of the engine-wide memory pool.
type GovernorStats struct {
	// TotalBytes is the configured pool size (EngineConfig.MemBudget);
	// zero means no engine-wide governance.
	TotalBytes int64
	// AvailableBytes is the currently ungranted remainder of the pool.
	AvailableBytes int64
	// Admitted is the number of queries holding grants right now.
	Admitted int
}

// GovernorStats returns the current memory-governor snapshot; the zero
// value when the engine runs without EngineConfig.MemBudget.
func (e *Engine) GovernorStats() GovernorStats {
	if e.gov == nil {
		return GovernorStats{}
	}
	return e.gov.stats()
}

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *Catalog { return e.cat }

// FormatValueRounded renders a value, rounding floats to the given number
// of significant digits. Useful when comparing results across strategies:
// parallel plans accumulate floating-point aggregates in nondeterministic
// order, so the last few bits of a SUM legitimately vary.
func FormatValueRounded(v Value, digits int) string {
	if v.K == types.KindFloat {
		return strconv.FormatFloat(v.F, 'g', digits, 64)
	}
	return v.String()
}

// FormatRows renders rows as a simple table for the examples and CLI.
func FormatRows(sch *Schema, rows []Row, limit int) string {
	var sb strings.Builder
	for i, c := range sch.Cols {
		if i > 0 {
			sb.WriteString("\t")
		}
		sb.WriteString(c.Name)
	}
	sb.WriteString("\n")
	for i, r := range rows {
		if limit > 0 && i >= limit {
			fmt.Fprintf(&sb, "... (%d more rows)\n", len(rows)-limit)
			break
		}
		for j, v := range r {
			if j > 0 {
				sb.WriteString("\t")
			}
			sb.WriteString(v.String())
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

package sip

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestRunningExample executes the paper's Section II motivating query:
// parts available for much less than retail whose stock is low relative to
// sales. It exercises derived tables, grouping, DISTINCT, and multi-way
// correlation — the plan of the paper's Figure 1.
func TestRunningExample(t *testing.T) {
	e := testEngine(t)
	const q = `
		SELECT DISTINCT p_partkey FROM part p, partsupp ps1,
		  (SELECT ps_partkey AS partkey, SUM(ps_availqty) AS avail
		   FROM partsupp ps2 GROUP BY ps_partkey) avail,
		  (SELECT l_partkey AS partkey, SUM(l_quantity) AS numsold
		   FROM lineitem l WHERE l_receiptdate > '1995-1-1'
		   GROUP BY l_partkey) sold
		WHERE p_partkey = ps_partkey
		  AND p_partkey = avail.partkey
		  AND p_partkey = sold.partkey
		  AND 10 * avail < numsold
		  AND 2 * ps_supplycost < p_retailprice`
	strategiesAgree(t, e, q)
	// AIP must fire here: the DISTINCT/top-join state and both aggregation
	// states are all usable AIP sources (Examples 3.1/3.2).
	res, err := e.Query(context.Background(), q, Options{Strategy: FeedForward})
	if err != nil {
		t.Fatal(err)
	}
	if res.FiltersCreated == 0 {
		t.Fatal("running example created no AIP sets")
	}
}

func TestDelayedTablesOption(t *testing.T) {
	e := testEngine(t)
	const q = `SELECT count(*) FROM partsupp WHERE ps_availqty > 100`
	fast, err := e.Query(context.Background(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := e.Query(context.Background(), q, Options{
		DelayedTables: []string{"partsupp"},
		Delay:         &DelayConfig{Initial: 80 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Duration < 70*time.Millisecond {
		t.Fatalf("delay not applied: %v", slow.Duration)
	}
	if canonValue(fast.Rows[0][0]) != canonValue(slow.Rows[0][0]) {
		t.Fatal("delay changed the answer")
	}
}

func TestDefaultDelayMatchesPaper(t *testing.T) {
	var o Options
	d := o.delay()
	if d.Initial != 100*time.Millisecond || d.EveryN != 1000 || d.Pause != 5*time.Millisecond {
		t.Fatalf("default delay = %+v, want the §VI-B parameters", d)
	}
}

func TestRemoteExecution(t *testing.T) {
	e := testEngine(t)
	const q = `
		SELECT s_name FROM supplier, partsupp
		WHERE s_suppkey = ps_suppkey AND s_nation = 'FRANCE' AND ps_availqty < 500`
	local, err := e.Query(context.Background(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := e.Query(context.Background(), q, Options{
		RemoteTables: map[string]int{"partsupp": 1},
		Topology:     NewTopology(&Link{BytesPerSec: Mbps(400)}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if remote.NetworkBytes == 0 {
		t.Fatal("remote scan shipped no bytes")
	}
	if len(local.Rows) != len(remote.Rows) {
		t.Fatalf("remote execution changed answers: %d vs %d", len(local.Rows), len(remote.Rows))
	}
}

func TestRemoteWithCostBasedShipsFilters(t *testing.T) {
	e := testEngine(t)
	// Selective part side + remote partsupp: the distributed AIP manager
	// should ship a filter and cut the bytes crossing the link.
	const q = `
		SELECT p_name FROM part, partsupp
		WHERE p_partkey = ps_partkey AND p_size = 1 AND p_type LIKE '%TIN'`
	run := func(s Strategy) *Result {
		res, err := e.Query(context.Background(), q, Options{
			Strategy:     s,
			RemoteTables: map[string]int{"partsupp": 1},
			Topology:     NewTopology(&Link{BytesPerSec: Mbps(800)}),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(Baseline)
	cb := run(CostBased)
	if len(base.Rows) != len(cb.Rows) {
		t.Fatalf("distributed AIP changed answers: %d vs %d", len(base.Rows), len(cb.Rows))
	}
	if cb.TuplesPruned == 0 {
		t.Fatal("no remote pruning happened")
	}
	if cb.NetworkBytes >= base.NetworkBytes {
		t.Fatalf("filter shipping did not reduce traffic: %d vs %d",
			cb.NetworkBytes, base.NetworkBytes)
	}
}

func TestHashSetSummaryOption(t *testing.T) {
	e := testEngine(t)
	const q = `
		SELECT s_name FROM supplier, partsupp
		WHERE s_suppkey = ps_suppkey AND s_nation = 'FRANCE'`
	res, err := e.Query(context.Background(), q, Options{Strategy: FeedForward, Summary: SummaryHashSet})
	if err != nil {
		t.Fatal(err)
	}
	base, err := e.Query(context.Background(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(base.Rows) {
		t.Fatal("hash-set summaries changed answers")
	}
}

func TestFPROption(t *testing.T) {
	e := testEngine(t)
	const q = `
		SELECT s_name FROM supplier, partsupp
		WHERE s_suppkey = ps_suppkey AND s_nation = 'FRANCE'`
	for _, fpr := range []float64{0.01, 0.05, 0.2} {
		res, err := e.Query(context.Background(), q, Options{Strategy: FeedForward, FPR: fpr})
		if err != nil {
			t.Fatalf("fpr %v: %v", fpr, err)
		}
		base := canon(mustRows(t, e, q, Options{}))
		got := canon(res.Rows)
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("fpr %v changed answers", fpr)
			}
		}
	}
}

func TestCostParamsOption(t *testing.T) {
	e := testEngine(t)
	const q = `
		SELECT s_name FROM supplier, partsupp
		WHERE s_suppkey = ps_suppkey AND s_nation = 'FRANCE'`
	eager := DefaultCostParams()
	eager.Fixed = 0
	res, err := e.Query(context.Background(), q, Options{Strategy: CostBased, Cost: &eager})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	starved := DefaultCostParams()
	starved.Fixed = 1e12
	res2, err := e.Query(context.Background(), q, Options{Strategy: CostBased, Cost: &starved})
	if err != nil {
		t.Fatal(err)
	}
	if res2.FiltersCreated != 0 {
		t.Fatal("an enormous fixed cost must suppress all filters")
	}
}

func TestSourcePacingOption(t *testing.T) {
	e := testEngine(t)
	const q = `SELECT count(*) FROM lineitem`
	fast, err := e.Query(context.Background(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pace the whole lineitem stream to ~150ms.
	li, _ := e.Catalog().Table("lineitem")
	rate := li.MemBytes() * 6
	paced, err := e.Query(context.Background(), q, Options{SourceBytesPerSec: rate})
	if err != nil {
		t.Fatal(err)
	}
	if paced.Duration <= fast.Duration || paced.Duration < 100*time.Millisecond {
		t.Fatalf("pacing ineffective: fast=%v paced=%v", fast.Duration, paced.Duration)
	}
}

func TestParseErrorsSurface(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Query(context.Background(), "SELEKT broken", Options{}); err == nil {
		t.Fatal("parse error not surfaced")
	}
	if _, err := e.Query(context.Background(), "SELECT missing_col FROM part", Options{}); err == nil {
		t.Fatal("bind error not surfaced")
	}
	if _, err := e.Explain("nope"); err == nil {
		t.Fatal("explain must surface parse errors")
	}
}

func TestFormatRows(t *testing.T) {
	e := testEngine(t)
	res, err := e.Query(context.Background(), "SELECT r_regionkey, r_name FROM region", Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatRows(res.Schema, res.Rows, 3)
	if !strings.Contains(out, "r_name") || !strings.Contains(out, "more rows") {
		t.Fatalf("FormatRows output:\n%s", out)
	}
	full := FormatRows(res.Schema, res.Rows, 0)
	if strings.Contains(full, "more rows") {
		t.Fatal("limit 0 must print everything")
	}
}

func TestStrategyNames(t *testing.T) {
	want := map[Strategy]string{
		Baseline: "Baseline", Magic: "Magic",
		FeedForward: "Feed-forward", CostBased: "Cost-based",
	}
	for s, n := range want {
		if s.String() != n {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
	if len(AllStrategies()) != 4 {
		t.Fatal("AllStrategies must list all four")
	}
}

func TestStatsExposed(t *testing.T) {
	e := testEngine(t)
	res, err := e.Query(context.Background(), `SELECT count(*) FROM nation`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || !strings.Contains(res.Stats.Report(), "scan") {
		t.Fatal("per-operator stats not exposed")
	}
	if res.Schema.Len() != 1 {
		t.Fatal("result schema missing")
	}
}

// TestConcurrentQueries runs several queries against one engine in
// parallel — the multi-query memory scenario the paper's space results
// motivate ("memory savings may be particularly important in a system that
// executes multiple queries simultaneously").
func TestConcurrentQueries(t *testing.T) {
	e := testEngine(t)
	const q = `
		SELECT n_name, count(*) FROM supplier, nation
		WHERE s_nationkey = n_nationkey GROUP BY n_name`
	errc := make(chan error, 8)
	for i := 0; i < 8; i++ {
		s := AllStrategies()[i%4]
		go func(s Strategy) {
			_, err := e.Query(context.Background(), q, Options{Strategy: s})
			errc <- err
		}(s)
	}
	for i := 0; i < 8; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

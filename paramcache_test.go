package sip

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// TestAdhocParameterizationSharesPlans pins the literal-parameterization
// contract: ad-hoc queries differing only in constants compile once and
// share a single cached template, and the parameterized execution returns
// exactly what the literal plan would have.
func TestAdhocParameterizationSharesPlans(t *testing.T) {
	cat := GenerateTPCH(DataConfig{ScaleFactor: 0.01})
	e := NewEngineWithConfig(cat, EngineConfig{})
	ctx := context.Background()

	// Reference results from an engine with the cache disabled (every call
	// takes the literal path).
	ref := NewEngineWithConfig(cat, EngineConfig{PlanCacheSize: -1})

	for i := 0; i < 5; i++ {
		sql := fmt.Sprintf(`SELECT n_name FROM nation WHERE n_nationkey = %d`, i)
		got, err := e.Query(ctx, sql, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Query(ctx, sql, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("q%d: %d rows, want %d", i, len(got.Rows), len(want.Rows))
		}
		for r := range got.Rows {
			if got.Rows[r].String() != want.Rows[r].String() {
				t.Fatalf("q%d row %d: %v, want %v", i, r, got.Rows[r], want.Rows[r])
			}
		}
	}
	cs := e.PlanCacheStats()
	if cs.Entries != 1 || cs.Misses != 1 || cs.Hits != 4 {
		t.Fatalf("5 literal variants should share one template: %+v", cs)
	}

	// Mixed literal kinds (float, string, date) parameterize too.
	for _, sql := range []string{
		`SELECT count(*) FROM part WHERE p_retailprice > 901.00`,
		`SELECT count(*) FROM part WHERE p_retailprice > 1200.50`,
		`SELECT count(*) FROM orders WHERE o_orderdate < '1995-03-15'`,
		`SELECT count(*) FROM orders WHERE o_orderdate < '1996-01-02'`,
		// The paper's loose date form must bind as an argument too.
		`SELECT count(*) FROM orders WHERE o_orderdate < '1995-1-1'`,
	} {
		if _, err := e.Query(ctx, sql, Options{}); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	cs = e.PlanCacheStats()
	if cs.Entries != 3 { // nation template + price template + date template
		t.Fatalf("expected 3 templates, got %+v", cs)
	}
}

// TestAdhocParameterizationFallbacks covers the statements that must NOT
// parameterize: LIKE patterns (the grammar requires a literal pattern),
// user placeholders (prepared-statement territory), and literal-free text.
func TestAdhocParameterizationFallbacks(t *testing.T) {
	cat := GenerateTPCH(DataConfig{ScaleFactor: 0.01})
	e := NewEngineWithConfig(cat, EngineConfig{})
	ctx := context.Background()

	// LIKE keeps its pattern inline; the remaining literal still lifts.
	res, err := e.Query(ctx, `SELECT count(*) FROM part WHERE p_type LIKE '%BRASS%' AND p_size > 0`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I == 0 {
		t.Fatalf("LIKE query returned %v", res.Rows)
	}

	// Ad-hoc text with a user `?` still refuses with the Prepare hint.
	_, err = e.Query(ctx, `SELECT n_name FROM nation WHERE n_nationkey = ?`, Options{})
	if err == nil || !strings.Contains(err.Error(), "Prepare") {
		t.Fatalf("placeholder query error = %v, want Prepare hint", err)
	}

	// Literal-free queries run on the plain path and still cache.
	if _, err := e.Query(ctx, `SELECT count(*) FROM nation`, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(ctx, `SELECT count(*) FROM nation`, Options{}); err != nil {
		t.Fatal(err)
	}
	if cs := e.PlanCacheStats(); cs.Hits == 0 {
		t.Fatalf("literal-free repeat did not hit: %+v", cs)
	}

	// A syntactically invalid statement reports the error against the
	// user's own source, not the normalized text.
	_, err = e.Query(ctx, `SELECT FROM nation WHERE n_nationkey = 1`, Options{})
	if err == nil {
		t.Fatal("invalid SQL did not error")
	}
}

// TestSlowQueryLog pins the engine-level slow-query log: queries at or over
// the threshold are recorded with their source text, most recent first, and
// fast queries stay out.
func TestSlowQueryLog(t *testing.T) {
	cat := GenerateTPCH(DataConfig{ScaleFactor: 0.01})
	e := NewEngineWithConfig(cat, EngineConfig{SlowQueryThreshold: 1}) // 1ns: everything is slow
	ctx := context.Background()

	sqls := []string{
		`SELECT count(*) FROM nation WHERE n_nationkey = 1`,
		`SELECT count(*) FROM region WHERE r_regionkey = 2`,
	}
	for _, sql := range sqls {
		if _, err := e.Query(ctx, sql, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.SlowQueryCount(); n != 2 {
		t.Fatalf("SlowQueryCount = %d, want 2", n)
	}
	got := e.SlowQueries()
	if len(got) != 2 {
		t.Fatalf("SlowQueries returned %d entries, want 2", len(got))
	}
	// Most recent first.
	if got[0].SQL != sqls[1] || got[1].SQL != sqls[0] {
		t.Fatalf("slow log order: %q then %q", got[0].SQL, got[1].SQL)
	}
	if got[0].Duration <= 0 || got[0].At.IsZero() {
		t.Fatalf("slow entry not stamped: %+v", got[0])
	}

	// Threshold zero disables the log.
	off := NewEngineWithConfig(cat, EngineConfig{})
	if _, err := off.Query(ctx, sqls[0], Options{}); err != nil {
		t.Fatal(err)
	}
	if n := off.SlowQueryCount(); n != 0 {
		t.Fatalf("disabled slow log recorded %d", n)
	}

	// The ring keeps only the newest slowLogSize entries but counts all.
	for i := 0; i < slowLogSize+10; i++ {
		if _, err := e.Query(ctx, fmt.Sprintf(`SELECT count(*) FROM nation WHERE n_nationkey = %d`, i), Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.SlowQueryCount(); n != int64(2+slowLogSize+10) {
		t.Fatalf("SlowQueryCount = %d, want %d", n, 2+slowLogSize+10)
	}
	if got := e.SlowQueries(); len(got) != slowLogSize {
		t.Fatalf("ring held %d entries, want %d", len(got), slowLogSize)
	}
}

package sip

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/network"
	"repro/internal/stats"
)

// Query parses, binds, optimizes (consulting the plan cache), and executes
// sql under the options, collecting the full result. It is a thin wrapper
// that drains QueryStream; a cancelled or deadline-expired ctx aborts the
// execution and returns context.Canceled / context.DeadlineExceeded.
func (e *Engine) Query(ctx context.Context, sql string, opts Options) (*Result, error) {
	rows, err := e.QueryStream(ctx, sql, opts)
	if err != nil {
		return nil, err
	}
	return rows.drain()
}

// QueryStream starts sql and returns a streaming cursor over its result.
// Rows are delivered batch-at-a-time from the root operator over the
// executor's bounded pipeline edges, so a slow consumer exerts backpressure
// (at most O(operators × PipelineDepth) batches are in flight) instead of
// forcing the result to materialize. The caller must exhaust or Close the
// cursor; Close cancels the query and reclaims every operator goroutine.
//
// Queries containing `?` placeholders must go through Prepare.
func (e *Engine) QueryStream(ctx context.Context, sql string, opts Options) (*Rows, error) {
	// The ad-hoc path parameterizes constant literals: queries differing
	// only in constants share one cached template, and the lifted literals
	// come back as bind arguments (see adhocPlan).
	p, args, err := e.adhocPlan(sql, opts)
	if err != nil {
		return nil, err
	}
	if p.numParams > len(args) {
		return nil, fmt.Errorf("sip: query has %d parameter(s); use Prepare and Stmt.Query", p.numParams)
	}
	return e.start(ctx, sql, p, opts, args)
}

// start instantiates the plan template and launches execution, returning
// the cursor wired to the root operator's output edge. sql is the source
// text for the slow-query log.
func (e *Engine) start(ctx context.Context, sql string, p *enginePlan, opts Options, args []Value) (*Rows, error) {
	// An already-cancelled context must fail deterministically: without
	// this check a fast query can outrun the BindStd watcher and return a
	// complete result from a dead context.
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	switch opts.Strategy {
	case Baseline, Magic, FeedForward, CostBased:
	default:
		return nil, fmt.Errorf("sip: unknown strategy %d", opts.Strategy)
	}
	switch opts.Scheduler {
	case "", SchedulerChan, SchedulerMorsel:
	default:
		return nil, fmt.Errorf("sip: unknown scheduler %q", opts.Scheduler)
	}

	// Admission: block until an execution slot frees or the caller gives up.
	// The running counter feeds the morsel scheduler's adaptive parallelism
	// (pool width degrades under load instead of oversubscribing).
	if e.sem != nil {
		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
	// Memory admission: draw a byte grant from the engine-wide pool (when
	// configured), blocking while the pool is dry. Runs after the slot
	// semaphore so the two compose: MaxConcurrentQueries bounds how many
	// grants can be outstanding.
	var grant int64
	if e.gov != nil {
		g, err := e.gov.acquire(ctx)
		if err != nil {
			if e.sem != nil {
				<-e.sem
			}
			return nil, err
		}
		grant = g
	}
	e.running.Add(1)
	var once sync.Once
	release := func() {
		once.Do(func() {
			e.running.Add(-1)
			if e.gov != nil {
				e.gov.release(grant)
			}
			if e.sem != nil {
				<-e.sem
			}
		})
	}

	inst, err := p.built.Instantiate(args)
	if err != nil {
		release()
		return nil, err
	}

	reg := stats.NewRegistry()
	if e.pooled {
		reg = stats.GetRegistry()
	}

	ectx := exec.NewContext(reg, nil)
	ectx.Parallelism = opts.Parallelism
	ectx.PipelineDepth = opts.PipelineDepth
	ectx.Scheduler = opts.Scheduler
	ectx.Load = func() int { return int(e.running.Load()) }
	// Per-query cap and engine grant compose: the tighter one wins.
	ectx.MemBudget = opts.MemBudget
	if grant > 0 && (ectx.MemBudget <= 0 || grant < ectx.MemBudget) {
		ectx.MemBudget = grant
	}

	// Recovery: per-query breaker set (transitions feed the registry) plus
	// the retry policy and failure mode from the options.
	breakers := network.NewBreakerSet(opts.Retry.WithDefaults())
	breakers.OnTransition = func(site int, from, to network.BreakerState) {
		reg.BreakerTransitions.Inc()
	}
	ectx.Recovery = exec.Recovery{
		Policy:   opts.Retry,
		Breakers: breakers,
		Mode:     opts.OnSourceFailure,
	}

	// Controllers are per-run: they hold per-query filter bookkeeping and
	// write into this execution's registry. Built after the context so
	// their filter shipments can run under its recovery policy.
	ctl := e.controller(opts, p, reg, ectx)
	ectx.Ctl = ctl

	for _, pt := range inst.Points {
		ectx.Register(pt)
	}
	stopWatch := ectx.BindStd(ctx)

	if ctl != nil {
		ctl.Begin()
	}
	start := time.Now()

	// Point-query fast path: a small, linear, stateless plan executes
	// synchronously — no goroutines, no channels — and the cursor serves
	// the materialized rows. Plans big enough for backpressure to matter
	// never qualify (see exec.InlineMaxRows).
	if inline, ok := exec.TryRunInline(ectx, inst.Root); ok {
		ch := make(chan exec.Batch, 1)
		if len(inline) > 0 {
			ch <- exec.Batch{Tuples: inline}
		}
		close(ch)
		return &Rows{
			eng:       e,
			sql:       sql,
			sch:       p.schema,
			out:       ch,
			ectx:      ectx,
			reg:       reg,
			pooled:    e.pooled,
			start:     start,
			stopWatch: stopWatch,
			release:   release,
		}, nil
	}

	out := exec.StartPlan(ectx, inst.Root)

	return &Rows{
		eng:       e,
		sql:       sql,
		sch:       p.schema,
		out:       out,
		ectx:      ectx,
		reg:       reg,
		pooled:    e.pooled,
		start:     start,
		stopWatch: stopWatch,
		release:   release,
	}, nil
}

// controller builds the per-execution AIP controller (nil for
// Baseline/Magic). Strategy validity was checked by start.
func (e *Engine) controller(opts Options, p *enginePlan, reg *stats.Registry, ectx *exec.Context) exec.Controller {
	switch opts.Strategy {
	case FeedForward, CostBased:
		copts := core.Options{
			FPR:      opts.FPR,
			Kind:     opts.Summary,
			Variant:  opts.Variant,
			Stats:    reg,
			Topology: p.topo,
			Cost:     core.DefaultCostParams(),
		}
		if opts.Cost != nil {
			copts.Cost = *opts.Cost
		}
		if p.topo != nil {
			// Remote filter shipments run under the query's recovery
			// policy (retries, per-attempt timeouts, site breakers) and
			// account their attempts on a dedicated operator row.
			copts.ShipFilter = ectx.FilterShipper(reg.NewOp("ship:aip-filters"))
		}
		if opts.Strategy == FeedForward {
			return core.NewFeedForward(copts)
		}
		return core.NewCostBased(copts)
	default:
		return nil
	}
}

// errRowsClosed is the cancellation cause recorded when the consumer closes
// the cursor early; it is reported as a clean shutdown (Err() == nil), not
// an error.
var errRowsClosed = errors.New("sip: rows closed")

// Rows is a streaming result cursor. The usage pattern follows
// database/sql:
//
//	rows, err := eng.QueryStream(ctx, sql, opts)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    row := rows.Row()
//	    ...
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Next blocks on the root operator's bounded output edge: not consuming
// rows stalls the pipeline (backpressure) rather than buffering the result.
// Close cancels the query, drains and reclaims every operator goroutine,
// and releases the engine's admission slot; it is safe to call at any time
// and more than once. A Rows is not safe for concurrent use.
type Rows struct {
	eng    *Engine
	sql    string // source text, for the slow-query log
	sch    *Schema
	out    <-chan exec.Batch
	ectx   *exec.Context
	reg    *stats.Registry
	pooled bool // recycle reg once the cursor finishes

	start     time.Time
	stopWatch func()
	release   func()

	cur   exec.Batch
	lanes []int32
	idx   int
	row   Row

	done bool
	err  error
	res  *Result
}

// Schema returns the result schema; available immediately.
func (r *Rows) Schema() *Schema { return r.sch }

// Next advances to the next row, blocking until one is available. It
// returns false when the result is exhausted, the query failed, or the
// cursor was closed; consult Err to distinguish.
func (r *Rows) Next() bool {
	if r.done {
		return false
	}
	for {
		if r.idx < len(r.lanes) {
			r.row = r.cur.Tuples[r.lanes[r.idx]]
			r.idx++
			return true
		}
		r.recycle()
		b, ok := <-r.out
		if !ok {
			r.finish()
			return false
		}
		r.cur, r.lanes, r.idx = b, b.Live(), 0
	}
}

// Row returns the current row. It is valid after a true Next and remains
// valid after further Next/Close calls (rows are independent of the
// recycled batch buffers).
func (r *Rows) Row() Row { return r.row }

// Err returns the terminal error: context.Canceled or
// context.DeadlineExceeded when the bound context fired, a *SourceError
// when a source stayed dead under FailOnSourceError, nil after normal
// exhaustion or a consumer-initiated Close.
func (r *Rows) Err() error { return r.err }

// IncompleteTables lists the sources the query has given up on so far
// (OnSourceFailure: PartialOnSourceError), one SourceError per dead table,
// sorted by table. During streaming the list can still grow; after
// exhaustion or Close it is final and matches Result.IncompleteTables.
// Empty means the rows delivered so far cover every source.
func (r *Rows) IncompleteTables() []*SourceError { return r.ectx.IncompleteSources() }

// PeakMemBytes reports the high-water mark of the query's tracked operator
// state so far; it can still grow while the cursor streams.
func (r *Rows) PeakMemBytes() int64 { return r.ectx.PeakTrackedBytes() }

// SpillBytes reports the bytes this query has written to spill runs so far.
func (r *Rows) SpillBytes() int64 { return r.ectx.SpillBytes() }

// SpillEvents reports the whole-bucket evictions this query has made so far.
func (r *Rows) SpillEvents() int64 { return r.ectx.SpillEvents() }

// Close cancels the query if it is still running, drains every operator
// goroutine, and releases the engine admission slot. Always returns nil;
// it is idempotent.
func (r *Rows) Close() error {
	if r.done {
		return nil
	}
	r.ectx.CancelCause(errRowsClosed)
	r.recycle()
	r.finish()
	return nil
}

// All returns a Go 1.23 range-over-func adapter. The cursor is closed when
// the loop ends, normally or early; a terminal error is yielded as the
// final element.
//
//	for row, err := range rows.All() {
//	    if err != nil { ... }
//	    ...
//	}
func (r *Rows) All() iter.Seq2[Row, error] {
	return func(yield func(Row, error) bool) {
		defer r.Close()
		for r.Next() {
			if !yield(r.row, nil) {
				return
			}
		}
		if err := r.Err(); err != nil {
			yield(nil, err)
		}
	}
}

// Result returns the lazily-finalized execution summary: row-less Result
// whose duration and counters are read once, at cursor exhaustion or
// Close — never mid-flight. It returns nil while the cursor is still
// active.
func (r *Rows) Result() *Result {
	return r.res
}

// recycle returns the in-hand batch to the executor's pool.
func (r *Rows) recycle() {
	if r.cur.Tuples != nil || r.cur.Sel != nil {
		exec.PutBatch(r.cur)
	}
	r.cur, r.lanes, r.idx = exec.Batch{}, nil, 0
}

// finish drains any remaining output (the producers have been cancelled or
// are done), tears down the context watcher, releases admission, and
// finalizes the stats view. Idempotent via r.done.
func (r *Rows) finish() {
	if r.done {
		return
	}
	r.done = true
	for b := range r.out {
		exec.PutBatch(b)
	}
	if r.ectx.Ctl != nil {
		r.ectx.Ctl.End()
	}
	dur := time.Since(r.start)
	r.stopWatch()
	r.release()
	if r.eng != nil && r.eng.slowThresh > 0 && dur >= r.eng.slowThresh {
		r.eng.slow.record(r.sql, dur, time.Now())
	}
	if err := r.ectx.Err(); err != nil && !errors.Is(err, errRowsClosed) {
		r.err = err
	}
	reg := r.reg
	// Quiescence before teardown: every operator goroutine must have exited
	// before the spill directory is removed (a live merge could still hold
	// a run file) and, in pooled mode, before the registry (whose counters
	// they write) is reset and reused by another query.
	r.ectx.Wait()
	r.ectx.Cleanup()
	r.res = &Result{
		Schema:                 r.sch,
		Duration:               dur,
		PeakStateBytes:         reg.PeakStateBytes(),
		FiltersCreated:         reg.FiltersMade.Load(),
		FiltersInjected:        reg.FiltersUsed.Load(),
		TuplesPruned:           reg.TotalPruned(),
		TuplesProcessed:        reg.TotalIn(),
		TuplesScanned:          reg.TotalScanned(),
		NetworkBytes:           reg.NetworkBytes.Load(),
		FilterBytes:            reg.FilterBytes.Load(),
		PeakFilterWorkingBytes: reg.PeakFilterWorkingBytes(),
		Retries:                reg.TotalRetries(),
		WastedBytes:            reg.TotalWastedBytes(),
		BreakerTransitions:     reg.BreakerTransitions.Load(),
		PeakMemBytes:           r.ectx.PeakTrackedBytes(),
		SpillBytes:             r.ectx.SpillBytes(),
		SpillEvents:            r.ectx.SpillEvents(),
		IncompleteTables:       r.ectx.IncompleteSources(),
		Stats:                  reg,
	}
	if r.pooled {
		r.res.Stats = nil
		reg.Release()
	}
}

// drain consumes the whole cursor into a materialized Result (the blocking
// Query path), via the same batch-collect-and-copy step exec.Run uses
// (appending row-by-row through Next would reallocate and re-copy the
// result log₂(n) times for large outputs). Only valid on a fresh cursor
// (before any Next).
func (r *Rows) drain() (*Result, error) {
	rows := exec.Collect(r.out)
	r.finish()
	if err := r.Err(); err != nil {
		return nil, err
	}
	res := r.res
	res.Rows = rows
	return res, nil
}

package sip

// Tests of the streaming/context/prepared-statement execution API:
// cancellation and deadline propagation with goroutine-leak checks (run
// these under -race; `make test-race` does), plan-cache hit/eviction
// accounting, backpressure bounds, and placeholder correctness.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/exec"
)

// slowOpts paces every scan to ~100 KB/s so a lineitem-sized query runs
// for tens of seconds — long enough to cancel mid-flight deterministically.
func slowOpts() Options {
	return Options{SourceBytesPerSec: 100_000}
}

const bigScanSQL = `SELECT l_orderkey, l_extendedprice FROM lineitem`

// waitGoroutines polls until the goroutine count drops back to base,
// failing the test with a full stack dump if it does not.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestQueryStreamCancelNoGoroutineLeak(t *testing.T) {
	e := testEngine(t)
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	rows, err := e.QueryStream(ctx, bigScanSQL, slowOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Consume a little to prove execution started, then cancel mid-flight.
	if !rows.Next() {
		t.Fatalf("no rows before cancel: %v", rows.Err())
	}
	cancel()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
	if res := rows.Result(); res == nil {
		t.Fatal("Result() nil after terminal Next")
	}
	waitGoroutines(t, base)
}

func TestQueryStreamDeadlineExceeded(t *testing.T) {
	e := testEngine(t)
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rows, err := e.QueryStream(ctx, bigScanSQL, slowOpts())
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Err() = %v, want context.DeadlineExceeded", err)
	}
	waitGoroutines(t, base)
}

func TestAlreadyCancelledContextFailsDeterministically(t *testing.T) {
	e := testEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A fast inline-eligible point query must not outrun the cancellation
	// watcher and return success from a dead context.
	for i := 0; i < 20; i++ {
		if _, err := e.Query(ctx, `SELECT n_name FROM nation WHERE n_nationkey = 1`, Options{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want context.Canceled", i, err)
		}
	}
}

func TestBlockingQueryHonorsContext(t *testing.T) {
	e := testEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := e.Query(ctx, bigScanSQL, slowOpts())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Query err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRowsCloseMidStreamIsCleanAndReclaims(t *testing.T) {
	e := testEngine(t)
	base := runtime.NumGoroutine()

	rows, err := e.QueryStream(context.Background(), bigScanSQL, slowOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("consumer-initiated Close must not surface an error, got %v", err)
	}
	if rows.Next() {
		t.Fatal("Next() true after Close")
	}
	if err := rows.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	waitGoroutines(t, base)
}

func TestQueryStreamMatchesBlockingQuery(t *testing.T) {
	e := testEngine(t)
	const q = `SELECT n_name, count(*) FROM supplier, nation
	           WHERE s_nationkey = n_nationkey GROUP BY n_name`
	want, err := e.Query(context.Background(), q, Options{Strategy: FeedForward})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := e.QueryStream(context.Background(), q, Options{Strategy: FeedForward})
	if err != nil {
		t.Fatal(err)
	}
	if rows.Result() != nil {
		t.Fatal("Result() must be nil mid-flight (stats finalize at exhaustion)")
	}
	var got []Row
	for rows.Next() {
		got = append(got, rows.Row())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if g, w := canon(got), canon(want.Rows); !equalStrings(g, w) {
		t.Fatalf("streamed rows differ from blocking result:\n%v\nvs\n%v", g, w)
	}
	res := rows.Result()
	if res == nil || res.TuplesScanned == 0 {
		t.Fatalf("finalized stats missing: %+v", res)
	}
}

func TestRowsAllIterator(t *testing.T) {
	e := testEngine(t)
	rows, err := e.QueryStream(context.Background(), `SELECT r_name FROM region`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, err := range rows.All() {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("iterator yielded %d regions, want 5", n)
	}
}

func TestPlanCacheHitAndEviction(t *testing.T) {
	cat := GenerateTPCH(DataConfig{ScaleFactor: 0.005})
	e := NewEngineWithConfig(cat, EngineConfig{PlanCacheSize: 2})
	ctx := context.Background()

	// Distinct literals normalize to one parameterized template, so only
	// structurally different statements occupy distinct cache entries.
	q := func(i int) string { return fmt.Sprintf(`SELECT count(*) FROM nation WHERE n_regionkey = %d`, i) }
	q2 := `SELECT count(*) FROM region WHERE r_regionkey = 1`
	q3 := `SELECT count(*) FROM supplier WHERE s_nationkey = 1`
	run := func(sql string) {
		t.Helper()
		if _, err := e.Query(ctx, sql, Options{}); err != nil {
			t.Fatal(err)
		}
	}

	run(q(1)) // miss
	run(q(2)) // hit: same template, different literal
	run(q(1)) // hit
	cs := e.PlanCacheStats()
	if cs.Hits != 2 || cs.Misses != 1 || cs.Entries != 1 {
		t.Fatalf("after literal variants: %+v, want 2 hits / 1 miss / 1 entry", cs)
	}

	run(q2) // miss, cache full
	run(q3) // miss, evicts the nation template
	cs = e.PlanCacheStats()
	if cs.Evictions != 1 || cs.Entries != 2 {
		t.Fatalf("after overflow: %+v, want 1 eviction / 2 entries", cs)
	}

	run(q(1)) // miss again: its template was evicted
	cs = e.PlanCacheStats()
	if cs.Hits != 2 || cs.Misses != 4 || cs.Evictions != 2 {
		t.Fatalf("after re-run of evicted: %+v, want hits=2 misses=4 evictions=2", cs)
	}

	// Different plan-affecting options must not share a cached plan.
	if _, err := e.Query(ctx, q(1), Options{Strategy: Magic}); err != nil {
		t.Fatal(err)
	}
	if cs = e.PlanCacheStats(); cs.Misses != 5 {
		t.Fatalf("magic variant should miss: %+v", cs)
	}

	// Remote-table queries with the default (nil) Topology bypass the cache
	// entirely: each call gets an independent simulated link (pre-cache
	// semantics), and no never-matchable per-call keys pollute the cache.
	remote := Options{RemoteTables: map[string]int{"nation": 1}}
	before := e.PlanCacheStats()
	for i := 0; i < 3; i++ {
		if _, err := e.Query(ctx, q(1), remote); err != nil {
			t.Fatal(err)
		}
	}
	after := e.PlanCacheStats()
	if after.Entries != before.Entries || after.Misses != before.Misses || after.Hits != before.Hits {
		t.Fatalf("nil-topology remote queries touched the plan cache: %+v -> %+v", before, after)
	}

	// Disabled cache keeps zero stats.
	off := NewEngineWithConfig(cat, EngineConfig{PlanCacheSize: -1})
	if _, err := off.Query(ctx, q(1), Options{}); err != nil {
		t.Fatal(err)
	}
	if cs := off.PlanCacheStats(); cs != (PlanCacheStats{}) {
		t.Fatalf("disabled cache reported %+v", cs)
	}
}

// TestBackpressureBoundsInFlightBatches pins the cursor's core promise: a
// stalled consumer stalls the scan. With PipelineDepth=2 the pipeline holds
// only O(operators × depth) batches, so the tuples scanned while the
// consumer sleeps must stay a small constant, not the table size.
func TestBackpressureBoundsInFlightBatches(t *testing.T) {
	e := testEngine(t)
	total, err := e.Query(context.Background(), bigScanSQL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(total.Rows) < 10_000 {
		t.Fatalf("test table too small for a meaningful bound: %d rows", len(total.Rows))
	}

	rows, err := e.QueryStream(context.Background(), bigScanSQL, Options{PipelineDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()

	// Stall: consume nothing while the producers fill the bounded edges.
	time.Sleep(300 * time.Millisecond)
	inFlight := rows.reg.TotalScanned()
	// Plan: scan → project → cursor. Two edges of depth 2 plus a batch in
	// each operator's hands plus channel-send slack: ≤ ~8 batches. Allow a
	// generous 4× margin — the point is it must not approach table size.
	bound := int64(32 * exec.BatchSize)
	if inFlight == 0 {
		t.Fatal("scan did not start")
	}
	if inFlight > bound {
		t.Fatalf("stalled consumer left %d tuples in flight (> bound %d): backpressure broken", inFlight, bound)
	}

	// Drain: everything still arrives exactly once.
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(total.Rows) {
		t.Fatalf("drained %d rows, want %d", n, len(total.Rows))
	}
}

func TestMaxConcurrentQueriesAdmission(t *testing.T) {
	cat := GenerateTPCH(DataConfig{ScaleFactor: 0.005})
	e := NewEngineWithConfig(cat, EngineConfig{MaxConcurrentQueries: 1})
	ctx := context.Background()

	hold, err := e.QueryStream(ctx, bigScanSQL, slowOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The only slot is taken: a second query must block in admission until
	// its context gives up.
	short, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if _, err := e.Query(short, `SELECT count(*) FROM nation`, Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("admission err = %v, want context.DeadlineExceeded", err)
	}
	// Closing the holder frees the slot.
	if err := hold.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(ctx, `SELECT count(*) FROM nation`, Options{}); err != nil {
		t.Fatalf("query after slot freed: %v", err)
	}
}

func TestPreparedStatementPointQuery(t *testing.T) {
	e := testEngine(t)
	ctx := context.Background()

	stmt, err := e.Prepare(ctx, `SELECT n_name FROM nation WHERE n_nationkey = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", stmt.NumParams())
	}
	for k := int64(0); k < 25; k++ {
		got, err := stmt.Query(ctx, Int(k))
		if err != nil {
			t.Fatal(err)
		}
		want, err := e.Query(ctx, fmt.Sprintf(`SELECT n_name FROM nation WHERE n_nationkey = %d`, k), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if g, w := canon(got.Rows), canon(want.Rows); !equalStrings(g, w) {
			t.Fatalf("key %d: prepared %v != adhoc %v", k, g, w)
		}
	}

	// Argument-count mismatches are errors, not silent misexecution.
	if _, err := stmt.Query(ctx); err == nil {
		t.Fatal("missing argument accepted")
	}
	if _, err := stmt.Query(ctx, Int(1), Int(2)); err == nil {
		t.Fatal("extra argument accepted")
	}
}

func TestPreparedStatementParamInference(t *testing.T) {
	e := testEngine(t)
	ctx := context.Background()

	// Date inference: the `?` compared against a date column accepts a
	// 'YYYY-MM-DD' string argument.
	stmt, err := e.Prepare(ctx, `SELECT count(*) FROM orders WHERE o_orderdate < ?`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stmt.Query(ctx, Str("1995-01-01"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Query(ctx, `SELECT count(*) FROM orders WHERE o_orderdate < '1995-01-01'`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][0].I != want.Rows[0][0].I || want.Rows[0][0].I == 0 {
		t.Fatalf("date param: got %v want %v (nonzero)", got.Rows[0][0], want.Rows[0][0])
	}

	// Float inference: an int argument coerces to the float comparison.
	stmt2, err := e.Prepare(ctx, `SELECT count(*) FROM supplier WHERE s_acctbal > ?`)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := stmt2.Query(ctx, Int(1000))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := e.Query(ctx, `SELECT count(*) FROM supplier WHERE s_acctbal > 1000`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Rows[0][0].I != w2.Rows[0][0].I {
		t.Fatalf("float param: got %v want %v", g2.Rows[0][0], w2.Rows[0][0])
	}

	// A wrongly-typed argument is an error, not a silent empty result.
	stmt3, err := e.Prepare(ctx, `SELECT n_name FROM nation WHERE n_nationkey = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt3.Query(ctx, Str("7")); err == nil {
		t.Fatal("string argument for an int parameter accepted")
	}
}

func TestAdhocQueryRejectsPlaceholders(t *testing.T) {
	e := testEngine(t)
	_, err := e.Query(context.Background(), `SELECT n_name FROM nation WHERE n_nationkey = ?`, Options{})
	if err == nil {
		t.Fatal("placeholder query accepted without arguments")
	}
}

func TestPlacementValidation(t *testing.T) {
	e := testEngine(t)
	ctx := context.Background()
	q := `SELECT count(*) FROM nation`

	if _, err := e.Query(ctx, q, Options{DelayedTables: []string{"natoin"}}); err == nil {
		t.Fatal("typoed DelayedTables accepted")
	}
	if _, err := e.Query(ctx, q, Options{RemoteTables: map[string]int{"natoin": 1}}); err == nil {
		t.Fatal("typoed RemoteTables accepted")
	}
	if _, err := e.Query(ctx, q, Options{RemoteTables: map[string]int{"nation": 0}}); err == nil {
		t.Fatal("site 0 (the master) accepted as a remote site")
	}
	// Valid names still work, case-insensitively.
	if _, err := e.Query(ctx, q, Options{DelayedTables: []string{"NATION"},
		Delay: &DelayConfig{Initial: time.Millisecond}}); err != nil {
		t.Fatalf("valid delayed table rejected: %v", err)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

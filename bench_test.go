// Benchmarks regenerating every figure of the paper's evaluation (Figures
// 5–14), plus the ablation studies DESIGN.md calls out. Each figure
// benchmark executes the figure's full (query × strategy) grid once per
// iteration and reports the series through b.Log on the first iteration;
// `go run ./cmd/sipbench -all` prints the same tables with confidence
// intervals at larger scale.
package sip_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	sip "repro"
	"repro/internal/harness"
	"repro/internal/workload"
)

// benchScale keeps `go test -bench=.` tractable; sipbench defaults to a
// larger SF 0.05 for the recorded experiments.
const benchScale = 0.01

var benchRunner = harness.New(harness.Config{
	ScaleFactor: benchScale,
	Repetitions: 1,
	SourceMBps:  1000,
})

// runFigure executes one full figure grid per iteration.
func runFigure(b *testing.B, num int) {
	fig, err := workload.FigureByNumber(num)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the engines (catalog generation excluded from timing).
	benchRunner.Engine(false)
	benchRunner.Engine(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		cells, err := benchRunner.RunFigure(fig, &buf)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sum bytes.Buffer
			harness.Summarize(cells, fig.Metric, &sum)
			b.Logf("\n%s\nshape summary:\n%s", buf.String(), sum.String())
			reportShape(b, cells, fig.Metric)
		}
	}
}

// reportShape publishes baseline-relative aggregate metrics so regressions
// in the reproduced shapes show up in benchmark diffs.
func reportShape(b *testing.B, cells []harness.Cell, metric string) {
	val := func(c harness.Cell) float64 {
		if metric == "state" {
			return c.StateMB
		}
		return float64(c.Mean)
	}
	base := map[string]float64{}
	for _, c := range cells {
		if c.Strategy == "Baseline" {
			base[c.Query] = val(c)
		}
	}
	agg := map[string][]float64{}
	for _, c := range cells {
		if c.Strategy == "Baseline" || base[c.Query] == 0 {
			continue
		}
		agg[c.Strategy] = append(agg[c.Strategy], val(c)/base[c.Query])
	}
	for strat, ratios := range agg {
		var mean float64
		for _, r := range ratios {
			mean += r
		}
		mean /= float64(len(ratios))
		b.ReportMetric(mean, strat+"/baseline")
	}
}

func BenchmarkFig05TimeQ2AndIBM(b *testing.B)      { runFigure(b, 5) }
func BenchmarkFig06TimeQ17(b *testing.B)           { runFigure(b, 6) }
func BenchmarkFig07SpaceQ2AndIBM(b *testing.B)     { runFigure(b, 7) }
func BenchmarkFig08SpaceQ17(b *testing.B)          { runFigure(b, 8) }
func BenchmarkFig09TimeDelayedQ2(b *testing.B)     { runFigure(b, 9) }
func BenchmarkFig10TimeDelayedQ17(b *testing.B)    { runFigure(b, 10) }
func BenchmarkFig11SpaceDelayedQ2(b *testing.B)    { runFigure(b, 11) }
func BenchmarkFig12SpaceDelayedQ17(b *testing.B)   { runFigure(b, 12) }
func BenchmarkFig13TimeJoinsDistrib(b *testing.B)  { runFigure(b, 13) }
func BenchmarkFig14SpaceJoinsDistrib(b *testing.B) { runFigure(b, 14) }

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5).

func benchEngine() *sip.Engine {
	return benchRunner.Engine(false)
}

func q17SQL(e *sip.Engine) string {
	spec, _ := workload.ByID("Q2A")
	return spec.SQL(e.Catalog())
}

// BenchmarkAblationSummaryKind compares Bloom filters against exact hash
// sets as the AIP-set representation (the paper found Bloom superior, §V).
func BenchmarkAblationSummaryKind(b *testing.B) {
	e := benchEngine()
	sql := q17SQL(e)
	for _, kind := range []struct {
		name string
		k    sip.SummaryKind
	}{{"Bloom", sip.SummaryBloom}, {"HashSet", sip.SummaryHashSet}} {
		b.Run(kind.name, func(b *testing.B) {
			var state float64
			for i := 0; i < b.N; i++ {
				res, err := e.Query(context.Background(), sql, sip.Options{
					Strategy:          sip.FeedForward,
					Summary:           kind.k,
					SourceBytesPerSec: 1 << 30,
				})
				if err != nil {
					b.Fatal(err)
				}
				state = float64(res.PeakStateBytes) / (1 << 20)
			}
			b.ReportMetric(state, "stateMB")
		})
	}
}

// BenchmarkAblationFPR sweeps the Bloom false-positive target around the
// paper's 5% setting.
func BenchmarkAblationFPR(b *testing.B) {
	e := benchEngine()
	sql := q17SQL(e)
	for _, fpr := range []float64{0.01, 0.05, 0.20} {
		b.Run(fmt.Sprintf("fpr=%g", fpr), func(b *testing.B) {
			var pruned int64
			for i := 0; i < b.N; i++ {
				res, err := e.Query(context.Background(), sql, sip.Options{
					Strategy:          sip.FeedForward,
					FPR:               fpr,
					SourceBytesPerSec: 1 << 30,
				})
				if err != nil {
					b.Fatal(err)
				}
				pruned = res.TuplesPruned
			}
			b.ReportMetric(float64(pruned), "pruned")
		})
	}
}

// BenchmarkAblationCostThreshold sweeps the Cost-Based manager's fixed
// creation overhead: 0 makes it nearly as eager as Feed-Forward, large
// values starve it.
func BenchmarkAblationCostThreshold(b *testing.B) {
	e := benchEngine()
	sql := q17SQL(e)
	for _, fixed := range []float64{0, 64, 4096} {
		b.Run(fmt.Sprintf("fixed=%g", fixed), func(b *testing.B) {
			cost := sip.DefaultCostParams()
			cost.Fixed = fixed
			var filters int64
			for i := 0; i < b.N; i++ {
				res, err := e.Query(context.Background(), sql, sip.Options{
					Strategy:          sip.CostBased,
					Cost:              &cost,
					SourceBytesPerSec: 1 << 30,
				})
				if err != nil {
					b.Fatal(err)
				}
				filters = res.FiltersCreated
			}
			b.ReportMetric(float64(filters), "filters")
		})
	}
}

// BenchmarkStrategies is the headline comparison on TPC-H Q17 at bench
// scale: per-strategy end-to-end latency.
func BenchmarkStrategies(b *testing.B) {
	e := benchEngine()
	sql := q17SQL(e)
	for _, s := range sip.AllStrategies() {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(context.Background(), sql, sip.Options{Strategy: s, SourceBytesPerSec: 1 << 30}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistributedBloomjoin measures the §VI-C remote case: Q3C over a
// modeled 100 Mbps link, baseline vs Cost-Based filter shipping.
func BenchmarkDistributedBloomjoin(b *testing.B) {
	e := benchEngine()
	spec, _ := workload.ByID("Q3C")
	sql := spec.SQL(e.Catalog())
	topo := sip.NewTopology(&sip.Link{BytesPerSec: sip.Mbps(100), Latency: time.Millisecond})
	for _, s := range []sip.Strategy{sip.Baseline, sip.CostBased} {
		b.Run(s.String(), func(b *testing.B) {
			var netMB float64
			for i := 0; i < b.N; i++ {
				res, err := e.Query(context.Background(), sql, sip.Options{
					Strategy:     s,
					RemoteTables: spec.Remote,
					Topology:     topo,
				})
				if err != nil {
					b.Fatal(err)
				}
				netMB = float64(res.NetworkBytes) / (1 << 20)
			}
			b.ReportMetric(netMB, "netMB")
		})
	}
}

// BenchmarkParseBind isolates front-end cost on the most complex workload
// query.
func BenchmarkParseBind(b *testing.B) {
	e := benchEngine()
	spec, _ := workload.ByID("Q1A")
	sql := spec.SQL(e.Catalog())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explain(sql); err != nil {
			b.Fatal(err)
		}
	}
}
